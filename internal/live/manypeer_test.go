package live_test

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/live"
	"repro/internal/proto"
)

// node builds one live node with a cleanup hook.
func node(t *testing.T, id int, cfg live.Config) *live.Node {
	t.Helper()
	n, err := live.NewNode(id, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// snapChan finds one channel snapshot by peer and direction.
func snapChan(snap *health.NodeSnapshot, peer int, dir string) *health.ChannelSnapshot {
	for i := range snap.Channels {
		if snap.Channels[i].Peer == peer && snap.Channels[i].Dir == dir {
			return &snap.Channels[i]
		}
	}
	return nil
}

// TestHandshake: a hello exchange must register both ends without any
// out-of-band AddPeer, seed the joiner's TX channel with the peer's
// advertised credit, and leave the link fully usable in both
// directions.
func TestHandshake(t *testing.T) {
	cfg := live.DefaultConfig()
	a := node(t, 0, cfg)
	b := node(t, 1, cfg)
	peer, err := b.Handshake(a.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if peer != 0 {
		t.Fatalf("handshake returned peer %d, want 0", peer)
	}
	if err := b.Send(0, 7, pattern(5000)); err != nil {
		t.Fatal(err)
	}
	if msg, err := a.Recv(7); err != nil || len(msg.Data) != 5000 || msg.Src != 1 {
		t.Fatalf("recv after handshake: %v src=%d len=%d", err, msg.Src, len(msg.Data))
	}
	// The responder learned us from the hello itself: reverse traffic
	// needs no registration either.
	if err := a.Send(1, 8, pattern(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(8); err != nil {
		t.Fatal(err)
	}
	snap := b.HealthSnapshot()
	tc := snapChan(&snap, 0, "tx")
	if tc == nil {
		t.Fatal("no tx channel to peer 0 after handshake")
	}
	if tc.Credit < 0 {
		t.Errorf("tx credit still unknown (%d) after a credited hello-ack", tc.Credit)
	}
	if snap.Counters["handshakes"] == 0 {
		t.Error("handshake counter never moved")
	}
}

// TestByeFailsChannels: the teardown notice from a closing peer must
// fail the survivor's TX channel immediately — ErrPeerDead without
// waiting out the MaxRetries RTO ladder.
func TestByeFailsChannels(t *testing.T) {
	cfg := live.DefaultConfig()
	// A retry ladder slow enough that only the bye can explain a fast
	// failure.
	cfg.RetransmitTimeout = 250 * time.Millisecond
	cfg.RTOMin = 250 * time.Millisecond
	cfg.MaxRetries = 8
	a, b := pair(t, cfg)
	if err := a.Send(1, 7, pattern(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(7); err != nil {
		t.Fatal(err)
	}
	b.Close()
	// The bye is datagram-delivered; give the receive loop a moment.
	deadline := time.Now().Add(time.Second)
	for {
		err := a.Send(1, 7, pattern(10))
		if errors.Is(err, live.ErrPeerDead) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("send after bye returned %v, want ErrPeerDead within 1s", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := a.HealthSnapshot()
	if snap.Counters["peer_evictions"] == 0 {
		t.Error("bye never counted as a peer eviction")
	}
}

// TestShardedFanIn: a multi-shard receiver must deliver every message
// from a 16-peer fan-in intact, and the per-shard stats must show the
// kernel actually spreading peers across shards.
func TestShardedFanIn(t *testing.T) {
	const (
		peers = 16
		msgs  = 20
		size  = 5 * 1000
	)
	rcfg := live.DefaultConfig()
	rcfg.Shards = 4
	rcfg.PortDepth = 1024
	recv := node(t, 100, rcfg)
	if recv.Shards() < 2 {
		t.Skipf("sharding unsupported on this platform (%d shard)", recv.Shards())
	}
	var wg sync.WaitGroup
	for p := 0; p < peers; p++ {
		s := node(t, p, live.DefaultConfig())
		live.Connect(recv, s)
		wg.Add(1)
		go func(s *live.Node, id int) {
			defer wg.Done()
			payload := pattern(size)
			payload[0] = byte(id)
			for i := 0; i < msgs; i++ {
				if err := s.Send(100, 9, payload); err != nil {
					t.Errorf("sender %d: %v", id, err)
					return
				}
			}
		}(s, p)
	}
	got := make([]int, peers)
	for i := 0; i < peers*msgs; i++ {
		msg, err := recv.Recv(9)
		if err != nil {
			t.Fatal(err)
		}
		if len(msg.Data) != size || msg.Data[0] != byte(msg.Src) {
			t.Fatalf("message %d from %d: len %d marker %d", i, msg.Src, len(msg.Data), msg.Data[0])
		}
		got[msg.Src]++
	}
	wg.Wait()
	for p, c := range got {
		if c != msgs {
			t.Errorf("peer %d delivered %d/%d messages", p, c, msgs)
		}
	}
	snap := recv.HealthSnapshot()
	if len(snap.Shards) != recv.Shards() {
		t.Fatalf("snapshot reports %d shards, node runs %d", len(snap.Shards), recv.Shards())
	}
	busy := 0
	var frames int64
	for _, s := range snap.Shards {
		if s.Frames > 0 {
			busy++
		}
		frames += s.Frames
	}
	if frames == 0 {
		t.Fatal("no shard recorded any frames")
	}
	// 16 peers all hashing to one of 4 shards is a (1/4)^15 fluke; two
	// busy shards prove the REUSEPORT spread is real.
	if busy < 2 {
		t.Errorf("only %d of %d shards saw traffic; REUSEPORT spread not engaged", busy, len(snap.Shards))
	}
}

// TestBlackholedPeerCannotStarvePool is the pool-isolation regression
// test: before per-peer in-flight caps, a peer that stopped acking
// retained a full window of pooled frames (and with a big enough
// window, most of the pool); now it retains at most PeerInFlight while
// healthy traffic streams on unharmed, and the pacer defers most of
// its retransmit storm.
func TestBlackholedPeerCannotStarvePool(t *testing.T) {
	cfg := live.DefaultConfig()
	cfg.Window = 64
	cfg.PeerInFlight = 8
	cfg.PaceBurst = 2
	cfg.RetransmitTimeout = 10 * time.Millisecond
	cfg.RTOMin = 5 * time.Millisecond
	cfg.RTOMax = 40 * time.Millisecond
	cfg.MaxRetries = 0 // retry forever: the blackhole must be bounded by the cap, not the retry budget
	a, b := pair(t, cfg)

	// The blackhole: a socket that never reads and never acks.
	hole, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()
	a.AddPeer(7, hole.LocalAddr().(*net.UDPAddr))

	// A message worth a full window of fragments, sent into the void;
	// the cap must hold it to 8 in-flight frames. The send blocks until
	// Close wakes it.
	blackholed := make(chan error, 1)
	go func() { blackholed <- a.Send(7, 9, pattern(64*1400)) }()

	// Healthy traffic must stream on unharmed while the blackhole RTOs.
	for i := 0; i < 50; i++ {
		if err := a.Send(1, 11, pattern(8000)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(11); err != nil {
			t.Fatal(err)
		}
	}
	snap := a.HealthSnapshot()
	tc := snapChan(&snap, 7, "tx")
	if tc == nil {
		t.Fatal("no tx channel to the blackholed peer")
	}
	if tc.InFlight > cfg.PeerInFlight {
		t.Errorf("blackholed peer holds %d frames in flight, cap is %d", tc.InFlight, cfg.PeerInFlight)
	}
	if tc.Window != cfg.PeerInFlight {
		t.Errorf("effective window reports %d, want the %d cap (the watchdog keys off it)", tc.Window, cfg.PeerInFlight)
	}
	// The healthy round-trips above can complete before the blackholed
	// channel's first RTO even fires, so poll for the deferral rather
	// than asserting on one snapshot.
	deadline := time.Now().Add(2 * time.Second)
	for snap.Counters["pace_deferrals"] == 0 {
		if time.Now().After(deadline) {
			t.Error("pacer never deferred a retransmit for the blackholed window")
			break
		}
		time.Sleep(5 * time.Millisecond)
		snap = a.HealthSnapshot()
	}
	a.Close()
	if err := <-blackholed; err == nil {
		t.Error("blackholed send returned nil, want ErrClosed/ErrPeerDead")
	}
}

// TestFanInSoakFaults is the many-peer churn soak: 64 faulty senders
// incast one receiver (sharded, capped, paced) under loss, duplication
// and reordering. Every message must deliver intact, the watchdog
// watching the receiver must issue no verdicts, and at quiesce every
// node's pool ledger must balance to zero outstanding buffers.
func TestFanInSoakFaults(t *testing.T) {
	const (
		peers = 64
		msgs  = 12
		size  = 3 * 1000
	)
	rcfg := live.DefaultConfig()
	rcfg.Shards = 4
	rcfg.PeerInFlight = 8
	rcfg.PaceBurst = 4
	rcfg.PortDepth = 4096
	rcfg.RetransmitTimeout = 10 * time.Millisecond
	rcfg.RTOMin = 5 * time.Millisecond
	recv := node(t, 100, rcfg)

	wd := health.NewWatchdog(health.WatchdogConfig{
		StallRTOs: 20, PoolSlack: 256,
	}, nil, nil, nil)
	wd.Watch(recv)
	var verdicts []health.Verdict
	wdStop := make(chan struct{})
	wdDone := make(chan struct{})
	go func() {
		defer close(wdDone)
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-wdStop:
				return
			case <-t.C:
				verdicts = append(verdicts, wd.Scan()...)
			}
		}
	}()

	scfg := live.DefaultConfig()
	scfg.PeerInFlight = 8
	scfg.PaceBurst = 4
	scfg.LossRate = 0.05
	scfg.DupRate = 0.05
	scfg.ReorderRate = 0.05
	scfg.RetransmitTimeout = 10 * time.Millisecond
	scfg.RTOMin = 5 * time.Millisecond
	senders := make([]*live.Node, peers)
	var wg sync.WaitGroup
	for p := 0; p < peers; p++ {
		scfg.Seed = int64(p + 1)
		s := node(t, p, scfg)
		senders[p] = s
		live.Connect(recv, s)
		wg.Add(1)
		go func(s *live.Node, id int) {
			defer wg.Done()
			payload := pattern(size)
			payload[0] = byte(id)
			for i := 0; i < msgs; i++ {
				if err := s.Send(100, 9, payload); err != nil {
					t.Errorf("sender %d: %v", id, err)
					return
				}
			}
		}(s, p)
	}
	for i := 0; i < peers*msgs; i++ {
		msg, err := recv.Recv(9)
		if err != nil {
			t.Fatal(err)
		}
		if len(msg.Data) != size || msg.Data[0] != byte(msg.Src) {
			t.Fatalf("message %d from %d corrupted: len %d marker %d", i, msg.Src, len(msg.Data), msg.Data[0])
		}
	}
	wg.Wait()
	close(wdStop)
	<-wdDone
	if len(verdicts) > 0 {
		t.Errorf("watchdog issued false verdicts during the soak: %+v", verdicts)
	}

	// Quiesce: reorder-delayed duplicates and in-flight acks drain, then
	// every pool ledger must balance — 0 outstanding buffers anywhere.
	deadline := time.Now().Add(5 * time.Second)
	for {
		leaked := int64(0)
		for _, n := range append([]*live.Node{recv}, senders...) {
			if s := n.HealthSnapshot(); s.Pool != nil {
				leaked += s.Pool.Outstanding
			}
		}
		if leaked == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool ledgers never balanced: %d buffers outstanding at quiesce", leaked)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestIdleEvictionReclaimsParked: frames parked behind a gap by a peer
// that then goes silent must return to the pool after IdleTimeout —
// and because eviction keeps the sequence counters, a retransmission
// of the missing prefix later resumes the channel in place.
func TestIdleEvictionReclaimsParked(t *testing.T) {
	cfg := live.DefaultConfig()
	cfg.IdleTimeout = 60 * time.Millisecond
	a := node(t, 0, cfg)

	peer, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	a.AddPeer(5, peer.LocalAddr().(*net.UDPAddr))
	dst := a.Addr()

	frame := func(seq uint32) []byte {
		hdr := proto.Header{Type: proto.TypeData, Flags: proto.FlagFirst | proto.FlagLast,
			Port: 9, Seq: seq, Len: 4}
		return append(hdr.Encode(nil), 'd', 'a', 't', byte(seq))
	}
	// Sequences 1 and 2 with 0 missing: both park in pooled buffers.
	for _, seq := range []uint32{1, 2} {
		if _, err := peer.WriteToUDPAddrPort(frame(seq), dst.AddrPort()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for {
		snap := a.HealthSnapshot()
		if snap.Pool.Outstanding == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("parked frames never retained pool buffers (outstanding %d)", snap.Pool.Outstanding)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Silence past IdleTimeout: the evictor must reclaim both buffers.
	deadline = time.Now().Add(2 * time.Second)
	for {
		snap := a.HealthSnapshot()
		if snap.Pool.Outstanding == 0 && snap.Counters["idle_evictions"] > 0 {
			if rc := snapChan(&snap, 5, "rx"); rc == nil || rc.Evictions == 0 {
				t.Error("channel snapshot missing its eviction count")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle eviction never reclaimed the parked frames (outstanding %d, evictions %d)",
				snap.Pool.Outstanding, snap.Counters["idle_evictions"])
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The peer comes back and retransmits from the gap: the channel
	// resumes in place and all three messages deliver in order.
	for _, seq := range []uint32{0, 1, 2} {
		if _, err := peer.WriteToUDPAddrPort(frame(seq), dst.AddrPort()); err != nil {
			t.Fatal(err)
		}
	}
	for want := 0; want < 3; want++ {
		msg, err := a.Recv(9)
		if err != nil {
			t.Fatal(err)
		}
		if len(msg.Data) != 4 || msg.Data[3] != byte(want) {
			t.Fatalf("resumed delivery %d: got %q", want, msg.Data)
		}
	}
}

// TestCreditAdvertised: every ack carries the receiver's credit, so a
// sender learns it within the first exchanged stride and the health
// snapshot stops reporting the unknown (-1) state.
func TestCreditAdvertised(t *testing.T) {
	a, b := pair(t, live.DefaultConfig())
	for i := 0; i < 20; i++ {
		if err := a.Send(1, 7, pattern(4000)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(7); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for {
		snap := a.HealthSnapshot()
		tc := snapChan(&snap, 1, "tx")
		if tc != nil && tc.Credit > 0 {
			if tc.Credit > a.HealthSnapshot().Window {
				t.Fatalf("credit %d exceeds the window", tc.Credit)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("sender never learned the peer's credit from its acks")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
