// Package live is the functional (not performance) CLIC implementation:
// the same wire format (internal/proto) and reliability core
// (internal/relwin) as the simulated protocol, run over real UDP sockets
// on the loopback interface — the closest raw-socket approximation to a
// kernel Ethernet protocol available to a pure-Go process. It exists to
// demonstrate that the protocol logic itself (framing, fragmentation,
// sequencing, cumulative acks, go-back-N retransmission, remote write,
// confirmation) delivers correctly over a real, lossy, reordering
// channel, with injectable loss/duplication for tests.
package live

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/proto"
	"repro/internal/relwin"
	"repro/internal/rto"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config tunes a live node.
type Config struct {
	// MTU bounds the CLIC payload per datagram (header included), like
	// the Ethernet MTU bounds a frame.
	MTU int

	// Window is the per-peer sliding window in frames.
	Window int

	// AckEvery is the cumulative-ack stride.
	AckEvery int

	// AckDelay is the delayed-ack timer.
	AckDelay time.Duration

	// RetransmitTimeout is the initial go-back-N timeout, used until the
	// first RTT sample; the per-peer estimator (internal/rto) then adapts
	// it to SRTT + 4·RTTVAR with exponential backoff on repeat timeouts.
	RetransmitTimeout time.Duration

	// RTOMin and RTOMax clamp the adaptive timeout; zero derives them
	// from RetransmitTimeout.
	RTOMin time.Duration
	RTOMax time.Duration

	// MaxRetries bounds consecutive retransmission timeouts without ack
	// progress before the peer is declared dead and senders get
	// ErrPeerDead. Zero retries forever.
	MaxRetries int

	// LossRate, DupRate inject datagram loss/duplication on the send
	// side, in [0,1). ReorderRate delays individual datagrams by a random
	// amount up to ReorderDelay so later traffic overtakes them. All
	// deterministic per Seed.
	LossRate     float64
	DupRate      float64
	ReorderRate  float64
	ReorderDelay time.Duration
	Seed         int64

	// Telemetry, when non-nil, is the registry the node's metrics are
	// registered into (with a node=<id> label), letting several
	// in-process nodes share one export surface. Nil creates a private
	// registry, reachable through Node.Telemetry().
	Telemetry *telemetry.Registry

	// Flight, when non-nil, records per-datagram lifecycle spans
	// (module-send, wire, module-rx) and protocol point events on wall
	// clocks. Both ends of a link must share the journal for wire spans
	// to stitch; the frame id is derived from (sender, sequence) so the
	// two ends agree without any extra bytes on the wire.
	Flight *flight.Journal
}

// DefaultConfig returns sensible loopback settings.
func DefaultConfig() Config {
	return Config{
		MTU:               1500,
		Window:            32,
		AckEvery:          8,
		AckDelay:          2 * time.Millisecond,
		RetransmitTimeout: 20 * time.Millisecond,
		RTOMin:            5 * time.Millisecond,
		RTOMax:            2 * time.Second,
		MaxRetries:        8,
		ReorderDelay:      2 * time.Millisecond,
	}
}

// Message is one delivered message.
type Message struct {
	Src  int
	Port uint16
	Data []byte
}

// Node is one live CLIC endpoint bound to a UDP socket.
type Node struct {
	ID   int
	cfg  Config
	conn *net.UDPConn

	mu      sync.Mutex
	peers   map[int]*net.UDPAddr
	tx      map[int]*liveTxChan
	rx      map[int]*liveRxChan
	ports   map[uint16]chan Message
	regions map[uint16]*Region
	confirm map[confirmKey]chan error
	rng     *rand.Rand
	closed  bool

	wg   sync.WaitGroup
	done chan struct{}

	// Metrics. Counters are atomic (telemetry.Counter), so the rxLoop
	// goroutine, timer callbacks and sender goroutines may all touch
	// them without holding mu — the live stack's counters are exactly
	// the shared state -race used to flag with plain ints.
	tel              *telemetry.Registry
	framesSent       telemetry.Counter
	framesRecv       telemetry.Counter
	retransmits      telemetry.Counter
	acksSent         telemetry.Counter
	dropsInjected    telemetry.Counter
	reordersInjected telemetry.Counter
	socketWrites     telemetry.Counter
	socketReads      telemetry.Counter
	rtoBackoffs      telemetry.Counter
	channelFailures  telemetry.Counter
	ackLatency       *telemetry.Histogram

	// fr is the optional flight recorder (nil disables); nodeName labels
	// this node's spans in the shared journal.
	fr       *flight.Journal
	nodeName string
}

type confirmKey struct {
	peer int
	seq  relwin.Seq
}

type liveTxChan struct {
	win      *relwin.Sender[[]byte]
	slotFree *sync.Cond
	rto      *time.Timer
	ctrl     *rto.Controller // guarded by n.mu
	rtoGauge *telemetry.Gauge
	failed   bool // retry budget exhausted; senders get ErrPeerDead

	// sampleFloor is the Karn's-rule watermark: sequences below it were
	// retransmitted, so their ack latencies must not feed the estimator.
	sampleFloor relwin.Seq

	// sentAt remembers each in-flight datagram's first push time for the
	// ack-latency histogram. Guarded by n.mu.
	sentAt map[relwin.Seq]time.Time
}

// publishRTO refreshes the channel's live_rto_ns gauge from the
// controller. Called with n.mu held after any controller mutation.
func (tc *liveTxChan) publishRTO() { tc.rtoGauge.Set(tc.ctrl.RTO()) }

type liveRxChan struct {
	reseq    *relwin.Resequencer[rxDatagram]
	asm      liveAsm
	sinceAck int
	ackTimer *time.Timer
}

type rxDatagram struct {
	hdr     proto.Header
	payload []byte
}

type liveAsm struct {
	buf     []byte
	want    int
	typ     proto.PacketType
	port    uint16
	flags   uint8
	started bool
	lastSeq relwin.Seq
}

// NewNode binds a node to 127.0.0.1 on an ephemeral port.
func NewNode(id int, cfg Config) (*Node, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("live: bind: %w", err)
	}
	n := &Node{
		ID:      id,
		cfg:     cfg,
		conn:    conn,
		peers:   map[int]*net.UDPAddr{},
		tx:      map[int]*liveTxChan{},
		rx:      map[int]*liveRxChan{},
		ports:   map[uint16]chan Message{},
		regions: map[uint16]*Region{},
		confirm: map[confirmKey]chan error{},
		rng:      rand.New(rand.NewSource(cfg.Seed ^ int64(id))),
		done:     make(chan struct{}),
		tel:      cfg.Telemetry,
		fr:       cfg.Flight,
		nodeName: fmt.Sprintf("live%d", id),
	}
	if n.tel == nil {
		n.tel = telemetry.NewRegistry()
	}
	node := telemetry.L("node", fmt.Sprint(id))
	n.tel.RegisterCounter("live_frames_sent_total", "datagrams written to the socket (before injected loss)", &n.framesSent, node)
	n.tel.RegisterCounter("live_frames_recv_total", "datagrams received and decoded", &n.framesRecv, node)
	n.tel.RegisterCounter("live_retransmits_total", "go-back-N datagram retransmissions", &n.retransmits, node)
	n.tel.RegisterCounter("live_acks_sent_total", "cumulative acknowledgements returned", &n.acksSent, node)
	n.tel.RegisterCounter("live_loss_injected_total", "datagrams dropped by send-side loss injection", &n.dropsInjected, node)
	n.tel.RegisterCounter("live_reorders_injected_total", "datagrams delayed by send-side reorder injection", &n.reordersInjected, node)
	n.tel.RegisterCounter("live_rto_backoffs_total", "retransmission-timeout expiries (each doubles the adaptive RTO)", &n.rtoBackoffs, node)
	n.tel.RegisterCounter("live_channel_failures_total", "peers declared dead after MaxRetries consecutive timeouts", &n.channelFailures, node)
	n.tel.RegisterCounter("live_socket_writes_total", "UDP write syscalls issued (including duplicates)", &n.socketWrites, node)
	n.tel.RegisterCounter("live_socket_reads_total", "UDP datagrams read from the socket", &n.socketReads, node)
	n.ackLatency = n.tel.Histogram("live_ack_latency_ns",
		"datagram push to cumulative-ack latency, wall-clock ns",
		telemetry.DefLatencyBuckets(), node)
	n.wg.Add(1)
	go n.rxLoop()
	return n, nil
}

// Telemetry returns the node's metrics registry (shared when
// Config.Telemetry was set).
func (n *Node) Telemetry() *telemetry.Registry { return n.tel }

// Addr returns the node's UDP address for peer registration.
func (n *Node) Addr() *net.UDPAddr { return n.conn.LocalAddr().(*net.UDPAddr) }

// AddPeer registers a peer node's address (the live analogue of the
// static MAC table).
func (n *Node) AddPeer(id int, addr *net.UDPAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = addr
}

// Connect registers two nodes with each other.
func Connect(a, b *Node) {
	a.AddPeer(b.ID, b.Addr())
	b.AddPeer(a.ID, a.Addr())
}

// Close shuts the node down. In-flight messages may be lost; peers'
// retransmissions will give up after their retry budget. Every pending
// timer (per-channel rto, per-channel delayed ack) is stopped so no
// time.AfterFunc callback outlives the node.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.done)
	for _, tc := range n.tx {
		if tc.rto != nil {
			tc.rto.Stop()
			tc.rto = nil
		}
		tc.slotFree.Broadcast()
	}
	for _, rc := range n.rx {
		if rc.ackTimer != nil {
			rc.ackTimer.Stop()
			rc.ackTimer = nil
		}
	}
	n.mu.Unlock()
	err := n.conn.Close()
	n.wg.Wait()
	return err
}

// Stats reports node activity counters.
func (n *Node) Stats() (framesSent, framesRecv, retransmits, acksSent, dropsInjected int64) {
	return n.framesSent.Value(), n.framesRecv.Value(), n.retransmits.Value(),
		n.acksSent.Value(), n.dropsInjected.Value()
}

// ErrClosed reports an operation on a closed node.
var ErrClosed = errors.New("live: node closed")

// ErrPeerDead reports that the channel to a peer exhausted its
// MaxRetries retransmission budget with no acknowledgement progress.
var ErrPeerDead = errors.New("live: peer dead after max retries")

// maxPayload is the CLIC payload per datagram after the header.
func (n *Node) maxPayload() int { return n.cfg.MTU - proto.HeaderBytes }

func (n *Node) txChanFor(peer int) *liveTxChan {
	tc, ok := n.tx[peer]
	if !ok {
		tc = &liveTxChan{
			win: relwin.NewSender[[]byte](n.cfg.Window),
			ctrl: rto.New(rto.Config{
				Initial:    n.cfg.RetransmitTimeout.Nanoseconds(),
				Min:        n.cfg.RTOMin.Nanoseconds(),
				Max:        n.cfg.RTOMax.Nanoseconds(),
				MaxRetries: n.cfg.MaxRetries,
			}),
			sentAt: map[relwin.Seq]time.Time{},
		}
		tc.rtoGauge = n.tel.Gauge("live_rto_ns",
			"current adaptive retransmission timeout for this channel",
			telemetry.L("node", fmt.Sprint(n.ID)), telemetry.L("peer", fmt.Sprint(peer)))
		tc.publishRTO()
		tc.slotFree = sync.NewCond(&n.mu)
		n.tx[peer] = tc
	}
	return tc
}

func (n *Node) rxChanFor(peer int) *liveRxChan {
	rc, ok := n.rx[peer]
	if !ok {
		rc = &liveRxChan{reseq: relwin.NewResequencer[rxDatagram](n.cfg.Window)}
		n.rx[peer] = rc
	}
	return rc
}

func (n *Node) portChan(port uint16) chan Message {
	ch, ok := n.ports[port]
	if !ok {
		ch = make(chan Message, 64)
		n.ports[port] = ch
	}
	return ch
}

// Send reliably transmits data to (dst, port), blocking on window space.
func (n *Node) Send(dst int, port uint16, data []byte) error {
	_, err := n.send(dst, port, proto.TypeData, 0, data)
	return err
}

// SendConfirm transmits data and blocks until the peer's confirmation of
// reception arrives (§5's send-with-confirmation primitive). It returns
// ErrPeerDead if the channel fails before the confirmation lands.
func (n *Node) SendConfirm(dst int, port uint16, data []byte) error {
	lastSeq, err := n.send(dst, port, proto.TypeData, proto.FlagConfirm, data)
	if err != nil {
		return err
	}
	key := confirmKey{peer: dst, seq: lastSeq}
	ch := make(chan error, 1)
	n.mu.Lock()
	n.confirm[key] = ch
	n.mu.Unlock()
	select {
	case err := <-ch:
		return err
	case <-n.done:
		return ErrClosed
	}
}

// send fragments and transmits one message, returning the last fragment's
// sequence number.
func (n *Node) send(dst int, port uint16, typ proto.PacketType, flags uint8, data []byte) (relwin.Seq, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return 0, ErrClosed
	}
	addr, ok := n.peers[dst]
	if !ok {
		return 0, fmt.Errorf("live: node %d has no peer %d", n.ID, dst)
	}
	tc := n.txChanFor(dst)
	if tc.failed {
		return 0, ErrPeerDead
	}
	total := len(data)
	off := 0
	first := true
	var lastSeq relwin.Seq
	for {
		end := off + n.maxPayload()
		if end > total {
			end = total
		}
		last := end == total
		// A channel failure broadcasts slotFree, so senders blocked on
		// window space wake here and surface ErrPeerDead.
		for !tc.win.CanSend() {
			if n.closed {
				return 0, ErrClosed
			}
			if tc.failed {
				return 0, ErrPeerDead
			}
			tc.slotFree.Wait()
		}
		if n.closed {
			return 0, ErrClosed
		}
		if tc.failed {
			return 0, ErrPeerDead
		}
		hdr := proto.Header{Type: typ, Port: port, Seq: tc.win.NextSeq(), Len: uint32(total)}
		if first {
			hdr.Flags |= proto.FlagFirst
		}
		if last {
			hdr.Flags |= proto.FlagLast
			hdr.Flags |= flags & proto.FlagConfirm
		}
		m0 := time.Now()
		dgram := hdr.Encode(make([]byte, 0, proto.HeaderBytes+end-off))
		dgram = append(dgram, data[off:end]...)
		lastSeq = tc.win.Push(dgram)
		tc.sentAt[lastSeq] = time.Now()
		n.armRTO(dst, tc)
		var fid uint64
		if n.fr != nil {
			// Both ends derive the frame id from (sender, sequence), so
			// sender-side and receiver-side spans stitch without any extra
			// bytes on the wire.
			fid = flight.FrameID(n.ID, lastSeq)
			n.fr.Span(n.nodeName, fid, trace.SpanModuleSend,
				m0.UnixNano(), time.Now().UnixNano())
		}
		n.transmit(addr, dgram, fid)
		off = end
		first = false
		if last {
			return lastSeq, nil
		}
	}
}

// transmit writes one datagram, applying loss/duplication/reordering
// injection. Called with the lock held (UDP writes don't block
// meaningfully). A reordered datagram's write is deferred by a random
// delay up to ReorderDelay so traffic sent after it overtakes it; the
// deferred callback touches only the socket and atomic counters, so it is
// safe even after Close.
func (n *Node) transmit(addr *net.UDPAddr, dgram []byte, fid uint64) {
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.dropsInjected.Inc()
		if fid != 0 {
			n.fr.Point(n.nodeName, fid, trace.PointDrop,
				time.Now().UnixNano(), int64(len(dgram)))
		}
		return
	}
	writes := 1
	if n.cfg.DupRate > 0 && n.rng.Float64() < n.cfg.DupRate {
		writes = 2
	}
	for i := 0; i < writes; i++ {
		if n.cfg.ReorderRate > 0 && n.rng.Float64() < n.cfg.ReorderRate {
			delay := n.cfg.ReorderDelay
			if delay <= 0 {
				delay = 2 * time.Millisecond
			}
			n.reordersInjected.Inc()
			time.AfterFunc(time.Duration(n.rng.Int63n(int64(delay)))+time.Microsecond, func() {
				n.framesSent.Inc()
				n.socketWrites.Inc()
				n.flightWire(fid)
				n.conn.WriteToUDP(dgram, addr) //nolint:errcheck // lossy channel by design
			})
			continue
		}
		n.framesSent.Inc()
		n.socketWrites.Inc()
		n.flightWire(fid)
		n.conn.WriteToUDP(dgram, addr) //nolint:errcheck // lossy channel by design
	}
}

// flightWire opens the wire span at the moment the datagram actually hits
// the socket. Begin is idempotent per frame, so an injected duplicate or a
// retransmission of a still-open frame extends the original span — which
// then truthfully covers the loss and recovery.
func (n *Node) flightWire(fid uint64) {
	if fid != 0 {
		n.fr.Begin(n.nodeName, fid, trace.SpanWire, time.Now().UnixNano())
	}
}

// armRTO starts the go-back-N timer for a peer channel if needed, at the
// controller's current adaptive timeout. Called with the lock held.
func (n *Node) armRTO(peer int, tc *liveTxChan) {
	if tc.rto != nil || tc.failed || tc.win.InFlight() == 0 {
		return
	}
	tc.rto = time.AfterFunc(time.Duration(tc.ctrl.RTO()), func() { n.fireRTO(peer) })
}

func (n *Node) fireRTO(peer int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	tc := n.tx[peer]
	if tc == nil || tc.failed {
		return
	}
	tc.rto = nil
	// Unacked's slice aliases the window's internal state and must not be
	// retained across Push/Ack; it is consumed below, under the same lock
	// acquisition that read it, so no sender can Push concurrently.
	unacked, base := tc.win.Unacked()
	if len(unacked) == 0 {
		return
	}
	if tc.ctrl.OnTimeout() {
		n.failChannel(peer, tc)
		return
	}
	n.rtoBackoffs.Inc()
	if n.fr != nil {
		n.fr.Point(n.nodeName, 0, trace.PointRTOBackoff,
			time.Now().UnixNano(), tc.ctrl.RTO())
	}
	tc.publishRTO() // the timeout doubled
	// Karn's rule: acks for anything below this watermark are ambiguous.
	tc.sampleFloor = tc.win.NextSeq()
	addr := n.peers[peer]
	for i, dgram := range unacked {
		n.retransmits.Inc()
		var fid uint64
		if n.fr != nil {
			fid = flight.FrameID(n.ID, base+relwin.Seq(i))
			n.fr.Point(n.nodeName, fid, trace.PointRetransmit,
				time.Now().UnixNano(), int64(len(dgram)))
		}
		n.transmit(addr, dgram, fid)
	}
	n.armRTO(peer, tc)
}

// failChannel declares a peer dead: blocked senders wake with ErrPeerDead,
// confirmation waiters fail, and the stale in-flight bookkeeping is
// dropped so sentAt cannot grow unbounded under persistent loss. Called
// with the lock held.
func (n *Node) failChannel(peer int, tc *liveTxChan) {
	tc.failed = true
	n.channelFailures.Inc()
	if n.fr != nil {
		n.fr.Point(n.nodeName, 0, trace.PointChannelFailed,
			time.Now().UnixNano(), int64(peer))
	}
	if tc.rto != nil {
		tc.rto.Stop()
		tc.rto = nil
	}
	tc.sentAt = map[relwin.Seq]time.Time{}
	tc.slotFree.Broadcast()
	for key, ch := range n.confirm {
		if key.peer == peer {
			delete(n.confirm, key)
			ch <- ErrPeerDead
		}
	}
}

// Recv blocks for the next message on port.
func (n *Node) Recv(port uint16) (Message, error) {
	n.mu.Lock()
	ch := n.portChan(port)
	n.mu.Unlock()
	select {
	case msg := <-ch:
		return msg, nil
	case <-n.done:
		return Message{}, ErrClosed
	}
}

// TryRecv returns the next message on port if one is waiting.
func (n *Node) TryRecv(port uint16) (Message, bool) {
	n.mu.Lock()
	ch := n.portChan(port)
	n.mu.Unlock()
	select {
	case msg := <-ch:
		return msg, true
	default:
		return Message{}, false
	}
}
