// Package live is the wire-accurate CLIC implementation run over real
// UDP sockets: the same wire format (internal/proto) and reliability
// core (internal/relwin) as the simulated protocol, on the loopback
// interface — the closest raw-socket approximation to a kernel Ethernet
// protocol available to a pure-Go process. Beyond functional fidelity
// (framing, fragmentation, sequencing, cumulative acks, go-back-N
// retransmission, remote write, confirmation, injectable faults), the
// datapath mirrors the paper's three Gigabit upgrades (§4):
//
//   - 0-copy framing: a sync.Pool of MTU-sized frame buffers is shared
//     by TX and RX; headers are encoded in place (proto.Header.Put) and
//     the retransmit window retains the pooled buffer itself — the
//     bytes on the wire are the bytes the window would retransmit, with
//     no intermediate copy (Fig. 1 path 2).
//   - Interrupt coalescing: the receive loop drains datagram bursts
//     (recvmmsg on Linux) and answers each burst with at most one
//     cumulative ack per peer, the way the NIC's interrupt moderation
//     amortises per-frame cost (§4.2).
//   - Lock sharding: each peer channel has its own lock; the node-level
//     lock only guards the registration tables, so concurrent senders
//     to different peers never serialise, and no lock is held across a
//     socket write on the TX fast path.
package live

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"time"

	"repro/internal/flight"
	"repro/internal/health"
	"repro/internal/lockcheck"
	"repro/internal/proto"
	"repro/internal/relwin"
	"repro/internal/telemetry"
)

// The declared lock hierarchy (DESIGN.md §8): every lock in this
// package carries a `//lockorder:` rank, ranks strictly increase
// inward (outer lock first, inner lock higher), and the cliclint
// lockorder/blockunderlock analyzers enforce the declaration at build
// time while the lockcheck wrappers assert it at runtime under
// `-tags lockcheck`. Locks that share a rank (the per-channel tx/rx
// mutexes) are order-free with respect to each other and must never
// nest.
const (
	rankSendMu = 10 // per-channel message atomicity; declared blockok (spans socket writes)
	rankLife   = 15 // lmu: handshake rendezvous + lifecycle bookkeeping
	rankChanMu = 20 // per-channel tx/rx state (tc.mu, rc.mu)
	rankPeers  = 30 // pmu: registration tables
	rankRegion = 40 // per-region remote-write buffer
	rankCfm    = 50 // cmu: confirmation rendezvous
	rankInject = 60 // imu: fault-injection rng
)

// Config tunes a live node.
type Config struct {
	// MTU bounds the CLIC payload per datagram (header included), like
	// the Ethernet MTU bounds a frame. It is also the frame-pool buffer
	// class (with a small floor).
	MTU int

	// Window is the per-peer sliding window in frames.
	Window int

	// AckEvery is the cumulative-ack stride.
	AckEvery int

	// AckDelay is the delayed-ack timer.
	AckDelay time.Duration

	// RetransmitTimeout is the initial go-back-N timeout, used until the
	// first RTT sample; the per-peer estimator (internal/rto) then adapts
	// it to SRTT + 4·RTTVAR with exponential backoff on repeat timeouts.
	RetransmitTimeout time.Duration

	// RTOMin and RTOMax clamp the adaptive timeout; zero derives them
	// from RetransmitTimeout.
	RTOMin time.Duration
	RTOMax time.Duration

	// MaxRetries bounds consecutive retransmission timeouts without ack
	// progress before the peer is declared dead and senders get
	// ErrPeerDead. Zero retries forever.
	MaxRetries int

	// SockBuf requests SO_RCVBUF/SO_SNDBUF for each of the node's
	// sockets, in bytes (best effort: the kernel clamps to
	// rmem_max/wmem_max). Zero asks for 4 MiB — a full jumbo-frame
	// window per peer otherwise overruns the default ~200 KiB receive
	// buffer, and every overrun is an invisible loss the sender recovers
	// from only by RTO. Negative leaves the OS default.
	SockBuf int

	// Shards is the number of SO_REUSEPORT sockets the node binds to its
	// one port, each drained by its own receive goroutine with its own
	// pooled batch reader. The kernel's REUSEPORT flow hash pins every
	// peer's datagrams (data and acks alike — same 4-tuple) to one
	// socket, so per-peer channel state stays single-reader without any
	// cross-shard locking. 0 or 1 means a single socket; platforms
	// without SO_REUSEPORT support (non-Linux builds) clamp to 1.
	Shards int

	// PeerInFlight caps the unacknowledged frames a single peer channel
	// may hold in flight, below Window. Under fan-in this is the
	// isolation knob: one blackholed or slow peer retains at most this
	// many pooled frame buffers instead of a full window, so it cannot
	// starve the shared pool. 0 means no extra cap (the window rules).
	PeerInFlight int

	// PaceBurst bounds the frames a single RTO expiry may retransmit —
	// the token-bucket pacing layer on top of go-back-N. The bucket
	// refills each RTO tick and shrinks by half per consecutive backoff,
	// so incast collapse degrades into paced trickles instead of
	// window-sized retransmit storms. 0 derives min(Window, 16);
	// negative disables pacing (legacy full go-back-N bursts).
	PaceBurst int

	// IdleTimeout evicts pooled state (parked out-of-order frames,
	// reassembly scratch) from receive channels that have made no
	// progress for this long. Sequence counters survive eviction, so an
	// idle peer that wakes up resumes its channel exactly where it
	// stopped — go-back-N retransmission refills anything dropped.
	// 0 disables idle eviction.
	IdleTimeout time.Duration

	// LegacyAcks strips FlagCredit from this node's acknowledgements —
	// the pre-credit wire format, in which peers receive no window
	// advertisement and send unthrottled. Interop testing and the
	// fan-in benchmark's "base" variant use it to reproduce a peer
	// that predates flow control; leave it off otherwise.
	LegacyAcks bool

	// PortDepth is the per-port delivery-queue depth in messages. Under
	// many-peer fan-in one slow consumer port would otherwise wedge the
	// shard receive loops; past this depth completed messages are
	// counted as port drops instead. 0 means 64.
	PortDepth int

	// LossRate, DupRate inject datagram loss/duplication on the send
	// side, in [0,1). ReorderRate delays individual datagrams by a random
	// amount up to ReorderDelay so later traffic overtakes them. All
	// deterministic per Seed.
	LossRate     float64
	DupRate      float64
	ReorderRate  float64
	ReorderDelay time.Duration
	Seed         int64

	// Telemetry, when non-nil, is the registry the node's metrics are
	// registered into (with a node=<id> label), letting several
	// in-process nodes share one export surface. Nil creates a private
	// registry, reachable through Node.Telemetry().
	Telemetry *telemetry.Registry

	// Flight, when non-nil, records per-datagram lifecycle spans
	// (module-send, wire, module-rx) and protocol point events on wall
	// clocks. Both ends of a link must share the journal for wire spans
	// to stitch; the frame id is derived from (sender, sequence) so the
	// two ends agree without any extra bytes on the wire.
	Flight *flight.Journal

	// Health, when non-nil, is the structured protocol event log:
	// retransmission rounds, RTO backoffs and channel failures are
	// emitted with per-peer attributes. Nil (the default) disables
	// event logging at the cost of a nil check on the slow paths.
	Health *health.Log
}

// DefaultConfig returns sensible loopback settings.
func DefaultConfig() Config {
	return Config{
		MTU:               1500,
		Window:            32,
		AckEvery:          8,
		AckDelay:          2 * time.Millisecond,
		RetransmitTimeout: 20 * time.Millisecond,
		RTOMin:            5 * time.Millisecond,
		RTOMax:            2 * time.Second,
		MaxRetries:        8,
		SockBuf:           4 << 20,
		ReorderDelay:      2 * time.Millisecond,
	}
}

// Message is one delivered message.
type Message struct {
	Src  int
	Port uint16
	Data []byte
}

// Node is one live CLIC endpoint bound to a UDP socket.
//
// Locking is sharded the way the datapath is: pmu (read-mostly) guards
// the registration tables only; each peer channel carries its own
// mutex; the confirmation rendezvous has its own small lock; counters
// are atomic. No state lock is held across a socket write (sendMu, the
// message-scope lock, deliberately spans the fragment flush and is
// declared blockok; fireRTO's retransmit loop is the one documented
// exception), and no lock is shared between traffic to different
// peers. Every lock carries a `//lockorder:` rank — see the rank
// constants above and DESIGN.md §8 for the full hierarchy — checked
// statically by cliclint and at runtime under `-tags lockcheck`.
type Node struct {
	ID  int
	cfg Config

	// shards are the node's sockets: one, or Config.Shards SO_REUSEPORT
	// sockets bound to the same port, each drained by its own rxLoop
	// goroutine. The slice is immutable after NewNode, so fast paths
	// index it without a lock. TX channels pin to shardOf(peer) for
	// their writes; any shard may transmit to any peer (all sockets
	// share the local address), which is what lets a receive loop answer
	// acks from the socket the datagram arrived on.
	shards []*rxShard

	// rxPeers counts receive channels with live state — the divisor for
	// the advertised credit (the socket buffer is a shared resource the
	// receiver splits across its talkers).
	rxPeers atomic.Int64

	// pool recycles MTU-class frame buffers across the TX path (encode →
	// window retention → ack release) and the RX out-of-order parking.
	pool *framePool

	// creditFrames is the receive budget the credit advertisement
	// divides across peers: the sockets' aggregate SO_RCVBUF in frames,
	// halved for slack. Computed once in NewNode.
	creditFrames int64

	// lmu guards the handshake rendezvous table: Handshake parks a
	// waiter per remote address, the receive loop completes it when the
	// hello-ack arrives. Held only around map operations; the completion
	// send happens on a buffered channel outside the lock.
	//lockorder: rank=15 name=lmu
	lmu       lockcheck.Mutex
	helloWait map[netip.AddrPort]chan helloReply

	// pmu guards the registration tables below. All four maps are
	// written only on registration (AddPeer, first use of a channel or
	// port) and read on fast paths via RLock. It ranks ABOVE the
	// channel locks because the RX deliver path resolves ports (and
	// regions) while dispatch state is live; nothing may acquire a
	// channel lock while holding pmu — Close and AddPeer snapshot the
	// tables under pmu and visit channels after releasing it.
	//lockorder: rank=30 name=pmu
	pmu     lockcheck.RWMutex
	peers   map[int]netip.AddrPort
	peerIDs map[netip.AddrPort]int
	tx      map[int]*liveTxChan
	rx      map[int]*liveRxChan
	ports   map[uint16]chan Message
	regions map[uint16]*Region

	// cmu guards the confirmation rendezvous table (§5 send-with-
	// confirmation). Lock order: a peer channel's mutex may wrap cmu
	// (failChannel), never the reverse.
	//lockorder: rank=50 name=cmu
	cmu     lockcheck.Mutex
	confirm map[confirmKey]chan error

	// imu guards the fault-injection randomness; faulty caches whether
	// any injection rate is non-zero so the clean fast path never takes
	// the lock. Innermost rank: transmit may be reached with a channel
	// lock held (the documented fireRTO exception).
	//lockorder: rank=60 name=imu
	imu    lockcheck.Mutex
	rng    *rand.Rand
	faulty bool

	closed atomic.Bool
	wg     sync.WaitGroup
	done   chan struct{}

	// Metrics. Counters are atomic (telemetry.Counter), so the rxLoop
	// goroutine, timer callbacks and sender goroutines may all touch
	// them without holding any lock — the live stack's counters are
	// exactly the shared state -race used to flag with plain ints.
	tel              *telemetry.Registry
	framesSent       telemetry.Counter
	framesRecv       telemetry.Counter
	retransmits      telemetry.Counter
	acksSent         telemetry.Counter
	dropsInjected    telemetry.Counter
	reordersInjected telemetry.Counter
	socketWrites     telemetry.Counter
	socketReads      telemetry.Counter
	rtoBackoffs      telemetry.Counter
	channelFailures  telemetry.Counter
	poolGets         telemetry.Counter
	poolPuts         telemetry.Counter
	poolAllocs       telemetry.Counter
	rxBursts         telemetry.Counter
	rxBurstFrames    telemetry.Counter
	rxPolls          telemetry.Counter
	rxPollEmpty      telemetry.Counter
	rxAggRuns        telemetry.Counter
	rxAggFrames      telemetry.Counter
	portDrops        telemetry.Counter
	handshakes       telemetry.Counter
	peerEvictions    telemetry.Counter
	idleEvictions    telemetry.Counter
	paceDeferrals    telemetry.Counter
	ackLatency       *telemetry.Histogram

	// fr is the optional flight recorder (nil disables); nodeName labels
	// this node's spans in the shared journal. hl is the optional
	// structured event log (nil disables), carried the same way.
	fr       *flight.Journal
	hl       *health.Log
	nodeName string
}

type confirmKey struct {
	peer int
	seq  relwin.Seq
}

// poolBufClassFloor keeps the frame-buffer class usefully sized even
// under tiny test MTUs, so out-of-order parking of a peer's slightly
// larger datagrams stays on the pooled path.
const poolBufClassFloor = 2048

// NewNode binds a node to 127.0.0.1 on an ephemeral port — one socket,
// or Config.Shards SO_REUSEPORT sockets sharing that port, each with
// its own receive goroutine.
func NewNode(id int, cfg Config) (*Node, error) {
	shardCount := clampShards(cfg.Shards)
	conns, err := listenShards(shardCount)
	if err != nil {
		return nil, fmt.Errorf("live: bind: %w", err)
	}
	sockBuf := cfg.SockBuf
	if sockBuf == 0 {
		sockBuf = 4 << 20
	}
	shards := make([]*rxShard, 0, len(conns))
	for i, conn := range conns {
		rawConn, err := conn.SyscallConn()
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("live: raw conn: %w", err)
		}
		if sockBuf > 0 {
			// Best effort: without this a single jumbo-MTU window overruns
			// the default receive buffer and the stream crawls on RTO stalls.
			conn.SetReadBuffer(sockBuf)  //nolint:errcheck // kernel clamps; degraded perf, not correctness
			conn.SetWriteBuffer(sockBuf) //nolint:errcheck // kernel clamps; degraded perf, not correctness
		}
		shards = append(shards, &rxShard{id: i, conn: conn, raw: rawConn})
	}
	n := &Node{
		ID:        id,
		cfg:       cfg,
		shards:    shards,
		peers:     map[int]netip.AddrPort{},
		peerIDs:   map[netip.AddrPort]int{},
		tx:        map[int]*liveTxChan{},
		rx:        map[int]*liveRxChan{},
		ports:     map[uint16]chan Message{},
		regions:   map[uint16]*Region{},
		confirm:   map[confirmKey]chan error{},
		helloWait: map[netip.AddrPort]chan helloReply{},
		rng:       rand.New(rand.NewSource(cfg.Seed ^ int64(id))),
		faulty:    cfg.LossRate > 0 || cfg.DupRate > 0 || cfg.ReorderRate > 0,
		done:      make(chan struct{}),
		tel:       cfg.Telemetry,
		fr:        cfg.Flight,
		hl:        cfg.Health,
		nodeName:  fmt.Sprintf("live%d", id),
	}
	n.lmu.SetRank(rankLife, "lmu")
	n.pmu.SetRank(rankPeers, "pmu")
	n.cmu.SetRank(rankCfm, "cmu")
	n.imu.SetRank(rankInject, "imu")
	mtu := cfg.MTU
	if mtu <= 0 {
		mtu = 1500
	}
	if sockBuf > 0 {
		n.creditFrames = int64(sockBuf) * int64(len(shards)) / int64(mtu) / 2
	} else {
		// OS-default buffers: assume the conservative ~200 KiB.
		n.creditFrames = int64(200<<10) * int64(len(shards)) / int64(mtu) / 2
	}
	if n.tel == nil {
		n.tel = telemetry.NewRegistry()
	}
	node := telemetry.L("node", fmt.Sprint(id))
	n.tel.RegisterCounter("live_frames_sent_total", "datagrams written to the socket (before injected loss)", &n.framesSent, node)
	n.tel.RegisterCounter("live_frames_recv_total", "datagrams received and decoded", &n.framesRecv, node)
	n.tel.RegisterCounter("live_retransmits_total", "go-back-N datagram retransmissions", &n.retransmits, node)
	n.tel.RegisterCounter("live_acks_sent_total", "cumulative acknowledgements returned", &n.acksSent, node)
	n.tel.RegisterCounter("live_loss_injected_total", "datagrams dropped by send-side loss injection", &n.dropsInjected, node)
	n.tel.RegisterCounter("live_reorders_injected_total", "datagrams delayed by send-side reorder injection", &n.reordersInjected, node)
	n.tel.RegisterCounter("live_rto_backoffs_total", "retransmission-timeout expiries (each doubles the adaptive RTO)", &n.rtoBackoffs, node)
	n.tel.RegisterCounter("live_channel_failures_total", "peers declared dead after MaxRetries consecutive timeouts", &n.channelFailures, node)
	n.tel.RegisterCounter("live_socket_writes_total", "UDP write syscalls issued (including duplicates)", &n.socketWrites, node)
	n.tel.RegisterCounter("live_socket_reads_total", "UDP datagrams read from the socket", &n.socketReads, node)
	n.tel.RegisterCounter("live_pool_gets_total", "frame buffers taken from the shared pool", &n.poolGets, node)
	n.tel.RegisterCounter("live_pool_puts_total", "frame buffers returned to the shared pool", &n.poolPuts, node)
	n.tel.RegisterCounter("live_pool_allocs_total", "frame buffers newly allocated on pool miss", &n.poolAllocs, node)
	n.tel.RegisterCounter("live_rx_bursts_total", "receive wakeups, each draining a burst of one or more datagrams", &n.rxBursts, node)
	n.tel.RegisterCounter("live_rx_burst_frames_total", "datagrams drained by burst receives", &n.rxBurstFrames, node)
	n.tel.RegisterCounter("live_rx_polls_total", "non-blocking poll probes that drained datagrams (adaptive poll rung)", &n.rxPolls, node)
	n.tel.RegisterCounter("live_rx_poll_empty_total", "non-blocking poll probes that found the socket empty", &n.rxPollEmpty, node)
	n.tel.RegisterCounter("live_rx_agg_runs_total", "aggregated same-peer data runs dispatched under one lock hold", &n.rxAggRuns, node)
	n.tel.RegisterCounter("live_rx_agg_frames_total", "datagrams carried by aggregated same-peer runs", &n.rxAggFrames, node)
	n.tel.RegisterCounter("live_port_drops_total", "completed messages dropped because the port queue was full", &n.portDrops, node)
	n.tel.RegisterCounter("live_handshakes_total", "hello exchanges completed (either side)", &n.handshakes, node)
	n.tel.RegisterCounter("live_peer_evictions_total", "peers fully removed by bye teardown", &n.peerEvictions, node)
	n.tel.RegisterCounter("live_idle_evictions_total", "idle receive channels whose pooled state was reclaimed", &n.idleEvictions, node)
	n.tel.RegisterCounter("live_pace_deferrals_total", "retransmit frames deferred to a later RTO tick by pacing", &n.paceDeferrals, node)
	n.ackLatency = n.tel.Histogram("live_ack_latency_ns",
		"datagram push to cumulative-ack latency, wall-clock ns",
		telemetry.DefLatencyBuckets(), node)
	size := cfg.MTU
	if size < poolBufClassFloor {
		size = poolBufClassFloor
	}
	n.pool = newFramePool(size, &n.poolGets, &n.poolPuts, &n.poolAllocs)
	for _, s := range n.shards {
		n.wg.Add(1)
		go n.rxLoop(s)
	}
	if cfg.IdleTimeout > 0 {
		n.wg.Add(1)
		go n.idleLoop()
	}
	return n, nil
}

// clampShards resolves Config.Shards: at least one socket, and no more
// than the platform supports (shardsSupported is 1 where SO_REUSEPORT
// sharding is unavailable).
func clampShards(want int) int {
	if want < 1 {
		return 1
	}
	if want > shardsSupported {
		return shardsSupported
	}
	return want
}

// shardFor returns the shard a peer's TX path writes through. The
// kernel picks the RX shard by flow hash; TX pinning just spreads send
// syscalls across sockets so shards don't contend on one write lock.
func (n *Node) shardFor(peer int) *rxShard {
	if peer < 0 {
		peer = -peer
	}
	return n.shards[peer%len(n.shards)]
}

// Telemetry returns the node's metrics registry (shared when
// Config.Telemetry was set).
func (n *Node) Telemetry() *telemetry.Registry { return n.tel }

// Addr returns the node's UDP address for peer registration. All
// shard sockets share this address.
func (n *Node) Addr() *net.UDPAddr { return n.shards[0].conn.LocalAddr().(*net.UDPAddr) }

// Shards reports the number of receive shards the node is running.
func (n *Node) Shards() int { return len(n.shards) }

// canonAddrPort normalises an address for the peer tables: IPv4-mapped
// IPv6 forms (what net.IPv4 produces) and plain IPv4 forms (what the
// socket reports on receive) must hash identically.
func canonAddrPort(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// AddPeer registers a peer node's address (the live analogue of the
// static MAC table).
func (n *Node) AddPeer(id int, addr *net.UDPAddr) {
	ap := canonAddrPort(addr.AddrPort())
	n.pmu.Lock()
	if old, ok := n.peers[id]; ok && old != ap {
		delete(n.peerIDs, old)
	}
	n.peers[id] = ap
	n.peerIDs[ap] = id
	tc := n.tx[id]
	rc := n.rx[id]
	n.pmu.Unlock()
	// Channels cache the peer address so fast paths skip the table; keep
	// the caches coherent on re-registration.
	if tc != nil {
		tc.mu.Lock()
		tc.addr = ap
		tc.mu.Unlock()
	}
	if rc != nil {
		rc.mu.Lock()
		rc.addr = ap
		rc.mu.Unlock()
	}
}

// Connect registers two nodes with each other.
func Connect(a, b *Node) {
	a.AddPeer(b.ID, b.Addr())
	b.AddPeer(a.ID, a.Addr())
}

// Close shuts the node down. A best-effort bye is sent to every
// registered peer so their side tears the channels down promptly
// instead of waiting out retry budgets. In-flight messages may be
// lost. Every pending timer (per-channel rto, per-channel delayed ack)
// is stopped so no timer callback outlives the node, and blocked
// senders and region waiters are woken.
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	n.sendByes()
	close(n.done)
	// Snapshot the channel tables under pmu, then visit each channel
	// under its own lock with pmu already released. Channel locks rank
	// BELOW pmu — the RX deliver path resolves ports while channel
	// dispatch state is live — so nesting them under pmu here was a
	// genuine ABBA deadlock: Close held pmu waiting on rc.mu while the
	// rxLoop held rc.mu waiting on pmu (found by the lockorder
	// analyzer; the lockcheck runtime panics on the old shape).
	n.pmu.Lock()
	txs := make([]*liveTxChan, 0, len(n.tx))
	for _, tc := range n.tx {
		txs = append(txs, tc)
	}
	rxs := make([]*liveRxChan, 0, len(n.rx))
	for _, rc := range n.rx {
		rxs = append(rxs, rc)
	}
	regions := make([]*Region, 0, len(n.regions))
	for _, r := range n.regions {
		regions = append(regions, r)
	}
	n.pmu.Unlock()
	for _, tc := range txs {
		tc.mu.Lock()
		if tc.rtoArmed {
			tc.rto.Stop()
			tc.rtoArmed = false
		}
		tc.slotFree.Broadcast()
		tc.mu.Unlock()
	}
	for _, rc := range rxs {
		rc.mu.Lock()
		if rc.ackArmed {
			rc.ackTimer.Stop()
			rc.ackArmed = false
		}
		rc.mu.Unlock()
	}
	for _, r := range regions {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	}
	var err error
	for _, s := range n.shards {
		if cerr := s.conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	n.wg.Wait()
	return err
}

// Stats reports node activity counters.
func (n *Node) Stats() (framesSent, framesRecv, retransmits, acksSent, dropsInjected int64) {
	return n.framesSent.Value(), n.framesRecv.Value(), n.retransmits.Value(),
		n.acksSent.Value(), n.dropsInjected.Value()
}

// ErrClosed reports an operation on a closed node.
var ErrClosed = errors.New("live: node closed")

// ErrPeerDead reports that the channel to a peer exhausted its
// MaxRetries retransmission budget with no acknowledgement progress.
var ErrPeerDead = errors.New("live: peer dead after max retries")

// maxPayload is the CLIC payload per datagram after the header.
func (n *Node) maxPayload() int { return n.cfg.MTU - proto.HeaderBytes }

// txFor returns (creating on first use) the transmit channel to peer.
func (n *Node) txFor(peer int) (*liveTxChan, error) {
	n.pmu.RLock()
	tc := n.tx[peer]
	n.pmu.RUnlock()
	if tc != nil {
		return tc, nil
	}
	n.pmu.Lock()
	defer n.pmu.Unlock()
	if tc := n.tx[peer]; tc != nil {
		return tc, nil
	}
	addr, ok := n.peers[peer]
	if !ok {
		return nil, fmt.Errorf("live: node %d has no peer %d", n.ID, peer)
	}
	tc = newTxChan(n, peer, addr)
	n.tx[peer] = tc
	return tc, nil
}

// rxFor returns (creating on first use) the receive channel from peer.
// Callers have already resolved peer through the address table, so the
// peer is known to be registered.
func (n *Node) rxFor(peer int) *liveRxChan {
	n.pmu.RLock()
	rc := n.rx[peer]
	n.pmu.RUnlock()
	if rc != nil {
		return rc
	}
	n.pmu.Lock()
	defer n.pmu.Unlock()
	if rc := n.rx[peer]; rc != nil {
		return rc
	}
	rc = newRxChan(n, peer, n.peers[peer])
	n.rx[peer] = rc
	n.rxPeers.Add(1)
	return rc
}

// portChan returns (creating on first use) the delivery queue for port.
func (n *Node) portChan(port uint16) chan Message {
	n.pmu.RLock()
	ch := n.ports[port]
	n.pmu.RUnlock()
	if ch != nil {
		return ch
	}
	n.pmu.Lock()
	defer n.pmu.Unlock()
	if ch := n.ports[port]; ch != nil {
		return ch
	}
	depth := n.cfg.PortDepth
	if depth <= 0 {
		depth = 64
	}
	ch = make(chan Message, depth)
	n.ports[port] = ch
	return ch
}

// Recv blocks for the next message on port.
func (n *Node) Recv(port uint16) (Message, error) {
	ch := n.portChan(port)
	select {
	case msg := <-ch:
		return msg, nil
	case <-n.done:
		return Message{}, ErrClosed
	}
}

// TryRecv returns the next message on port if one is waiting.
func (n *Node) TryRecv(port uint16) (Message, bool) {
	ch := n.portChan(port)
	select {
	case msg := <-ch:
		return msg, true
	default:
		return Message{}, false
	}
}
