//go:build linux && (amd64 || arm64)

package live

import (
	"context"
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// rxBatchSize is the recvmmsg burst: how many datagrams one receive
// wakeup may drain. The paper's NIC coalesces interrupts at a similar
// depth (§4.2); past ~8 the syscall amortisation flattens while the
// resident buffer cost keeps growing.
const rxBatchSize = 16

// shardsSupported caps Config.Shards: Linux distributes datagrams
// across an SO_REUSEPORT group by flow hash, so any reasonable shard
// count works. The cap only guards against absurd configs.
const shardsSupported = 64

// soReusePort is SO_REUSEPORT, spelled out because the frozen syscall
// package predates it (same treatment as solUDP/udpSegment below).
const soReusePort = 0xf

// listenShards binds count UDP sockets to one 127.0.0.1 port. A single
// shard is a plain ephemeral bind; more set SO_REUSEPORT on every
// socket (the first picks the port, the rest join its reuseport
// group). The kernel hashes each remote 4-tuple to one group member,
// so a peer's datagrams always reach the same shard. The group is
// complete before any traffic flows — membership changes would remap
// flows, which is why the shard set is fixed for the node's lifetime.
func listenShards(count int) ([]*net.UDPConn, error) {
	if count <= 1 {
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return nil, err
		}
		return []*net.UDPConn{c}, nil
	}
	lc := net.ListenConfig{Control: func(network, address string, rc syscall.RawConn) error {
		var serr error
		if err := rc.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	conns := make([]*net.UDPConn, 0, count)
	addr := "127.0.0.1:0"
	for i := 0; i < count; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp4", addr)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		c := pc.(*net.UDPConn)
		conns = append(conns, c)
		if i == 0 {
			addr = c.LocalAddr().String()
		}
	}
	return conns, nil
}

// mmsghdr mirrors struct mmsghdr from <sys/socket.h>: a msghdr plus the
// kernel-reported datagram length, padded to 8-byte alignment (64 bytes
// total on linux/amd64 and linux/arm64, whose syscall.Msghdr is 56).
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// batchReader drains datagram bursts with recvmmsg(2) through the
// runtime poller: the raw fd callback issues a non-blocking recvmmsg
// and, on EAGAIN, yields back to the poller instead of spinning. All
// per-message state (iovecs, sockaddr storage, buffers) is resident, so
// steady-state receive is allocation-free.
type batchReader struct {
	rc     syscall.RawConn
	msgs   [rxBatchSize]mmsghdr
	iovecs [rxBatchSize]syscall.Iovec
	names  [rxBatchSize]syscall.RawSockaddrInet4
	bufs   [rxBatchSize][]byte
	froms  [rxBatchSize]netip.AddrPort
	lens   [rxBatchSize]int

	// readFn/tryFn are the persistent poller callbacks (per-call
	// closures would allocate on every wakeup); both report through
	// count/errno. readFn parks in the poller on EAGAIN; tryFn reports
	// an empty batch instead, so the adaptive poll rung can spin
	// without ever sleeping in the kernel.
	readFn func(uintptr) bool
	tryFn  func(uintptr) bool
	count  int
	errno  syscall.Errno
}

func newBatchReader(conn *net.UDPConn) (*batchReader, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	r := &batchReader{rc: rc}
	for i := range r.bufs {
		r.bufs[i] = make([]byte, 65536) // any UDP datagram fits: never MSG_TRUNC
		r.iovecs[i].Base = &r.bufs[i][0]
		r.iovecs[i].SetLen(len(r.bufs[i]))
		r.msgs[i].hdr.Name = (*byte)(unsafe.Pointer(&r.names[i]))
		r.msgs[i].hdr.Iov = &r.iovecs[i]
		r.msgs[i].hdr.Iovlen = 1
	}
	r.readFn = func(fd uintptr) bool {
		for {
			nn, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&r.msgs[0])), rxBatchSize,
				syscall.MSG_DONTWAIT, 0, 0)
			switch errno {
			case 0:
				r.count, r.errno = int(nn), 0
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // nothing queued: let the poller wait for readability
			default:
				r.count, r.errno = 0, errno
				return true
			}
		}
	}
	r.tryFn = func(fd uintptr) bool {
		for {
			nn, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&r.msgs[0])), rxBatchSize,
				syscall.MSG_DONTWAIT, 0, 0)
			switch errno {
			case 0:
				r.count, r.errno = int(nn), 0
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				// Empty ring: report a zero-datagram batch instead of
				// parking, so the caller keeps ownership of the schedule.
				r.count, r.errno = 0, 0
				return true
			default:
				r.count, r.errno = 0, errno
				return true
			}
		}
	}
	return r, nil
}

// prep resets the value-result msg_namelen fields the kernel shrank on
// the previous batch.
func (r *batchReader) prep() {
	for i := range r.msgs {
		r.msgs[i].hdr.Namelen = uint32(unsafe.Sizeof(r.names[0]))
	}
}

// decode extracts per-datagram lengths and source addresses after a
// successful recvmmsg.
func (r *batchReader) decode() {
	for i := 0; i < r.count; i++ {
		r.lens[i] = int(r.msgs[i].len)
		sa := &r.names[i]
		// in_port_t is big-endian in memory regardless of host order.
		pb := (*[2]byte)(unsafe.Pointer(&sa.Port))
		r.froms[i] = netip.AddrPortFrom(netip.AddrFrom4(sa.Addr),
			uint16(pb[0])<<8|uint16(pb[1]))
	}
}

// readBatch blocks until at least one datagram is queued and drains up
// to rxBatchSize of them in a single recvmmsg — the interrupt-
// coalescing analogue: one wakeup, one syscall, a burst of frames.
func (r *batchReader) readBatch() (int, error) {
	r.prep()
	if err := r.rc.Read(r.readFn); err != nil {
		return 0, err // socket closed
	}
	if r.errno != 0 {
		return 0, r.errno
	}
	r.decode()
	return r.count, nil
}

// tryReadBatch drains up to rxBatchSize queued datagrams without
// blocking: an empty socket returns (0, nil) immediately instead of
// parking in the poller. This is the poll rung of the adaptive receive
// ladder — after a full burst the rxLoop assumes more traffic is in
// flight and keeps draining on its own schedule, the way the NAPI
// driver polls the ring with its interrupt line masked.
func (r *batchReader) tryReadBatch() (int, error) {
	r.prep()
	if err := r.rc.Read(r.tryFn); err != nil {
		return 0, err // socket closed
	}
	if r.errno != 0 {
		return 0, r.errno
	}
	r.decode()
	return r.count, nil
}

// datagram returns the i'th datagram of the current batch and its
// source. The slice aliases the reader's resident buffer and is valid
// until the next readBatch.
func (r *batchReader) datagram(i int) ([]byte, netip.AddrPort) {
	return r.bufs[i][:r.lens[i]], r.froms[i]
}

// UDP generalized segmentation offload (linux ≥4.18): a cmsg of level
// SOL_UDP / type UDP_SEGMENT carrying a uint16 segment size makes one
// sendmsg(2) carry a whole burst, which the kernel splits into
// per-segment datagrams far below the syscall layer. The constants are
// spelled out because the frozen syscall package predates them.
const (
	solUDP      = 17    // IPPROTO_UDP as a sockopt level
	udpSegment  = 103   // UDP_SEGMENT cmsg type / sockopt
	gsoMaxBytes = 65000 // stay clear of the 64 KiB skb payload ceiling
	gsoMaxSegs  = 32    // well under the kernel's UDP_MAX_SEGMENTS
)

// gso support is probed on first use: the feature predates some
// container runtimes' seccomp allow-lists, so the first EINVAL/ENOTSUP
// from the kernel latches the fallback to plain sendmmsg.
type gsoState uint8

const (
	gsoUntried gsoState = iota
	gsoOn
	gsoOff
)

// txBatcher is the coalescing TX side: one resident set of
// mmsghdrs/iovecs per peer channel (all fragments of a burst share the
// destination, so one sockaddr serves the whole batch), flushed through
// the poller with MSG_DONTWAIT + wait-for-writability. Bursts of
// equal-sized fragments take the GSO superframe path — a single
// sendmsg whose iovec array gathers every staged buffer, segmented by
// the kernel at fragment boundaries — and mixed-size bursts fall back
// to one sendmmsg covering the batch.
type txBatcher struct {
	msgs   [txBatchSize]mmsghdr
	iovecs [txBatchSize]syscall.Iovec
	name   syscall.RawSockaddrInet4

	// GSO superframe state: one msghdr gathering all staged iovecs,
	// with the segment-size control message resident beside it.
	gso     gsoState
	gsoHdr  syscall.Msghdr
	gsoCtrl [24]byte // CmsgSpace(2): 16-byte cmsghdr + uint16 + padding

	// writeFn/gsoFn are the persistent poller callbacks (per-call
	// closures would allocate on every flush); off/cnt track flush
	// progress across partial sends, calls counts syscalls issued.
	writeFn func(uintptr) bool
	gsoFn   func(uintptr) bool
	off     int
	cnt     int
	calls   int
	gsoErr  syscall.Errno
}

func newTxBatcher() *txBatcher {
	t := &txBatcher{}
	for i := range t.msgs {
		t.msgs[i].hdr.Name = (*byte)(unsafe.Pointer(&t.name))
		t.msgs[i].hdr.Namelen = uint32(unsafe.Sizeof(t.name))
		t.msgs[i].hdr.Iov = &t.iovecs[i]
		t.msgs[i].hdr.Iovlen = 1
	}
	t.gsoHdr.Name = (*byte)(unsafe.Pointer(&t.name))
	t.gsoHdr.Namelen = uint32(unsafe.Sizeof(t.name))
	t.gsoHdr.Iov = &t.iovecs[0]
	t.gsoHdr.Control = &t.gsoCtrl[0]
	t.gsoHdr.SetControllen(len(t.gsoCtrl))
	// cmsghdr{len, level, type} in host order; len covers header + data.
	*(*uint64)(unsafe.Pointer(&t.gsoCtrl[0])) = 16 + 2 // CmsgLen(2)
	*(*int32)(unsafe.Pointer(&t.gsoCtrl[8])) = solUDP
	*(*int32)(unsafe.Pointer(&t.gsoCtrl[12])) = udpSegment
	t.writeFn = func(fd uintptr) bool {
		for t.off < t.cnt {
			nn, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&t.msgs[t.off])), uintptr(t.cnt-t.off),
				syscall.MSG_DONTWAIT, 0, 0)
			switch errno {
			case 0:
				t.calls++
				t.off += int(nn)
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // kernel send buffer full: wait for writability
			default:
				// Drop the rest of the burst: a lossy channel by design;
				// go-back-N recovers whatever mattered.
				t.off = t.cnt
				return true
			}
		}
		return true
	}
	t.gsoFn = func(fd uintptr) bool {
		for {
			_, _, errno := syscall.Syscall6(syscall.SYS_SENDMSG, fd,
				uintptr(unsafe.Pointer(&t.gsoHdr)), syscall.MSG_DONTWAIT, 0, 0, 0)
			switch errno {
			case 0:
				t.calls++
				t.gsoErr = 0
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // kernel send buffer full: wait for writability
			default:
				t.gsoErr = errno
				return true
			}
		}
	}
	return t
}

// gsoEligible reports whether the first cnt staged fragments form a
// valid GSO superframe: every fragment but the last exactly segsize
// bytes (the kernel segments at fixed offsets; only the final segment
// may run short), within the skb payload and segment-count ceilings.
func gsoEligible(tc *liveTxChan, cnt, segsize int) bool {
	if cnt < 2 || cnt > gsoMaxSegs {
		return false
	}
	total := 0
	for i := 0; i < cnt; i++ {
		m := tc.stageFb[i].n
		total += m
		if m != segsize && (i != cnt-1 || m > segsize) {
			return false
		}
	}
	return total <= gsoMaxBytes
}

// writeBurst flushes the first cnt staged fragments of tc to addr in as
// few syscalls as the kernel allows — one GSO sendmsg when the burst
// is uniform, one sendmmsg otherwise — returning the syscall count.
// Guarded by tc.sendMu (stage and batcher have the same owner).
func writeBurst(n *Node, tc *liveTxChan, addr netip.AddrPort, cnt int) int {
	t := tc.batcher
	t.name.Family = syscall.AF_INET
	t.name.Addr = addr.Addr().As4()
	// in_port_t is big-endian in memory regardless of host order.
	pb := (*[2]byte)(unsafe.Pointer(&t.name.Port))
	port := addr.Port()
	pb[0], pb[1] = byte(port>>8), byte(port)
	total := 0
	for i := 0; i < cnt; i++ {
		fb := tc.stageFb[i]
		t.iovecs[i].Base = &fb.b[0]
		t.iovecs[i].SetLen(fb.n)
		total += fb.n
	}
	t.calls = 0
	segsize := tc.stageFb[0].n
	if t.gso != gsoOff && gsoEligible(tc, cnt, segsize) {
		t.gsoHdr.Iovlen = uint64(cnt)
		*(*uint16)(unsafe.Pointer(&t.gsoCtrl[16])) = uint16(segsize)
		tc.shard.raw.Write(t.gsoFn) //nolint:errcheck // lossy channel by design
		if t.gsoErr == 0 {
			t.gso = gsoOn
			return t.calls
		}
		// First rejection latches the sendmmsg fallback (old kernel or
		// seccomp filter); resend this burst the portable way.
		t.gso = gsoOff
	}
	t.off, t.cnt = 0, cnt
	tc.shard.raw.Write(t.writeFn) //nolint:errcheck // lossy channel by design
	return t.calls
}
