package live

import (
	"sort"
	"time"

	"repro/internal/health"
)

// HealthSnapshot captures the node's full per-peer/channel state for
// the health layer (/debug/clic, clicstat, the stall watchdog). It is
// lock-narrow by construction: the registration table is read under one
// RLock to collect the channel pointers, then each channel is visited
// under its own mutex — the same sharding the datapath uses, so a
// snapshot of a busy node briefly touches each channel instead of
// freezing the node. Counters are atomics and read without any lock.
func (n *Node) HealthSnapshot() health.NodeSnapshot {
	sockBuf := n.cfg.SockBuf
	if sockBuf == 0 {
		sockBuf = 4 << 20
	}
	// Puts read before gets: every Put's Get bumped the counter first,
	// so this order keeps Outstanding ≥ 0 under concurrent recycling
	// (the reverse order can observe a put whose get it missed).
	puts := n.poolPuts.Value()
	gets := n.poolGets.Value()
	snap := health.NodeSnapshot{
		Node:       n.nodeName,
		CapturedNs: time.Now().UnixNano(),
		MTU:        n.cfg.MTU,
		Window:     n.cfg.Window,
		SockBuf:    sockBuf,
		Pool: &health.PoolSnapshot{
			Gets:        gets,
			Puts:        puts,
			Allocs:      n.poolAllocs.Value(),
			Outstanding: gets - puts,
		},
		Counters: map[string]int64{
			health.CounterTxFrames:  n.framesSent.Value(),
			health.CounterRxWakeups: n.rxBursts.Value(),
			"rx_frames":             n.framesRecv.Value(),
			"retransmits":           n.retransmits.Value(),
			"acks_sent":             n.acksSent.Value(),
			"rto_backoffs":          n.rtoBackoffs.Value(),
			"channel_failures":      n.channelFailures.Value(),
			"handshakes":            n.handshakes.Value(),
			"peer_evictions":        n.peerEvictions.Value(),
			"idle_evictions":        n.idleEvictions.Value(),
			"pace_deferrals":        n.paceDeferrals.Value(),
			"port_drops":            n.portDrops.Value(),
		},
	}
	for _, s := range n.shards {
		snap.Shards = append(snap.Shards, health.ShardSnapshot{
			Shard:     s.id,
			Bursts:    s.bursts.Load(),
			Frames:    s.frames.Load(),
			Polls:     s.polls.Load(),
			PollEmpty: s.pollEmpty.Load(),
		})
	}
	n.pmu.RLock()
	txs := make([]*liveTxChan, 0, len(n.tx))
	for _, tc := range n.tx {
		txs = append(txs, tc)
	}
	rxs := make([]*liveRxChan, 0, len(n.rx))
	for _, rc := range n.rx {
		rxs = append(rxs, rc)
	}
	n.pmu.RUnlock()
	for _, tc := range txs {
		tc.mu.Lock()
		// Window reports the effective send limit — min(window, per-peer
		// cap, advertised credit) — so the watchdog's window-stall
		// condition (InFlight >= Window) fires for capped and
		// credit-starved channels too, not only window-full ones.
		snap.Channels = append(snap.Channels, health.ChannelSnapshot{
			Peer:           tc.peer,
			Dir:            "tx",
			Window:         tc.effectiveWindow(),
			Credit:         tc.credit,
			InFlightCap:    tc.capFrames,
			PacedBacklog:   tc.pacedBacklog,
			InFlight:       tc.win.InFlight(),
			NextSeq:        tc.win.NextSeq(),
			AckedSeq:       tc.win.Base(),
			RTONs:          tc.ctrl.RTO(),
			SRTTNs:         tc.ctrl.SRTT(),
			RTTVarNs:       tc.ctrl.RTTVar(),
			Retries:        tc.ctrl.Retries(),
			Failed:         tc.failed,
			LastProgressNs: tc.lastProgressNs,
		})
		tc.mu.Unlock()
	}
	for _, rc := range rxs {
		rc.mu.Lock()
		snap.Channels = append(snap.Channels, health.ChannelSnapshot{
			Peer:           rc.src,
			Dir:            "rx",
			CumAck:         rc.reseq.CumAck(),
			Parked:         rc.reseq.Buffered(),
			SinceAck:       rc.sinceAck,
			AdvCredit:      rc.lastCredit,
			Evictions:      rc.evictions,
			LastProgressNs: rc.lastProgressNs,
		})
		rc.mu.Unlock()
	}
	sort.Slice(snap.Channels, func(i, j int) bool {
		a, b := &snap.Channels[i], &snap.Channels[j]
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.Dir < b.Dir
	})
	return snap
}
