package live

import (
	"sync"

	"repro/internal/telemetry"
)

// frameBuf is one pooled datagram buffer — the sk_buff of the live
// stack. The backing array b is allocated once at full pool size and
// recycled for the node's lifetime; fb.b[:fb.n] is the current wire
// view (header + payload).
//
// Ownership protocol (machine-checked by the cliclint bufown analyzer
// and asserted at runtime by framePool.Put):
//
//   - TX: the send path encodes into the buffer, then hands it to the
//     retransmit window (relwin.Sender.Push), which owns it — and may
//     retransmit from it — until the cumulative ack or channel failure
//     releases it back to the pool. This is the Go analogue of the
//     paper's 0-copy send path (Fig. 1 path 2): the bytes the wire
//     reads are the bytes the window retains, with no defensive copy
//     in between.
//   - RX: in-order datagrams are consumed in place from the read
//     buffer and never touch the pool; only out-of-order datagrams are
//     copied into a pooled buffer while parked in the resequencer.
type frameBuf struct {
	b []byte
	n int // valid wire bytes: the datagram is b[:n]

	// retained marks the buffer as owned by a retransmit window or a
	// resequencer park; pooled marks it as inside the pool. Both are
	// manipulated under the owning channel's lock (or while the buffer
	// is exclusively held), and exist to turn ownership bugs —
	// recycling a buffer the window may still retransmit, double
	// frees — into immediate panics instead of silent data corruption.
	retained bool
	pooled   bool
}

// framePool is a sync.Pool-backed frame-buffer pool shared by the TX
// and RX paths of one node. Buffers are MTU-sized (with a floor): big
// enough for any datagram this node frames or parks, small enough that
// a GC-cleared pool refills cheaply.
type framePool struct {
	size               int
	pool               sync.Pool
	gets, puts, allocs *telemetry.Counter
}

func newFramePool(size int, gets, puts, allocs *telemetry.Counter) *framePool {
	p := &framePool{size: size, gets: gets, puts: puts, allocs: allocs}
	p.pool.New = func() any {
		p.allocs.Inc()
		return &frameBuf{b: make([]byte, size)}
	}
	return p
}

// Get returns an exclusively owned buffer with len(b) == pool size.
func (p *framePool) Get() *frameBuf {
	p.gets.Inc()
	fb := p.pool.Get().(*frameBuf)
	fb.pooled = false
	fb.n = 0
	return fb
}

// Put recycles a buffer. It panics on a double free or on a buffer a
// retransmit window / resequencer still retains — the two ownership
// violations that would otherwise surface as corrupted datagrams when
// the pool hands the bytes to another sender.
func (p *framePool) Put(fb *frameBuf) {
	if fb.pooled {
		panic("live: pooled frame buffer freed twice")
	}
	if fb.retained {
		panic("live: frame buffer returned to the pool while a window retains it")
	}
	if len(fb.b) != p.size {
		// Oversized one-off (a foreign datagram larger than the pool
		// class): never entered through Get, so don't count it — gets
		// and puts stay balanced at quiesce — and don't let it poison
		// the pool; the GC reclaims it.
		return
	}
	p.puts.Inc()
	fb.pooled = true
	p.pool.Put(fb)
}
