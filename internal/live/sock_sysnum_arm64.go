//go:build linux

package live

import "syscall"

// sysSendmmsg is sendmmsg(2) on linux/arm64, where the standard
// library's syscall table does carry it.
const sysSendmmsg uintptr = syscall.SYS_SENDMMSG
