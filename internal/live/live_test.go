package live_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/live"
)

func pair(t *testing.T, cfg live.Config) (*live.Node, *live.Node) {
	t.Helper()
	a, err := live.NewNode(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := live.NewNode(1, cfg)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	live.Connect(a, b)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*19 + 11)
	}
	return b
}

func TestLiveSendRecv(t *testing.T) {
	a, b := pair(t, live.DefaultConfig())
	payload := pattern(100)
	if err := a.Send(1, 7, payload); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv(7)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Src != 0 || !bytes.Equal(msg.Data, payload) {
		t.Fatalf("recv src=%d len=%d", msg.Src, len(msg.Data))
	}
}

func TestLiveFragmentedMessage(t *testing.T) {
	a, b := pair(t, live.DefaultConfig())
	payload := pattern(50_000) // ~34 datagrams at MTU 1500
	done := make(chan error, 1)
	go func() { done <- a.Send(1, 8, payload) }()
	msg, err := b.Recv(8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg.Data, payload) {
		t.Fatalf("fragmented payload corrupted: %d bytes", len(msg.Data))
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestLiveOrderingManyMessages(t *testing.T) {
	a, b := pair(t, live.DefaultConfig())
	const count = 100
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < count; i++ {
			if err := a.Send(1, 9, []byte(fmt.Sprintf("m%04d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < count; i++ {
		msg, err := b.Recv(9)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("m%04d", i); string(msg.Data) != want {
			t.Fatalf("message %d = %q, want %q (ordering broken)", i, msg.Data, want)
		}
	}
	wg.Wait()
}

func TestLiveLossRecovery(t *testing.T) {
	// 20% injected datagram loss: go-back-N must still deliver everything
	// exactly once, in order.
	cfg := live.DefaultConfig()
	cfg.LossRate = 0.20
	cfg.Seed = 7
	cfg.RetransmitTimeout = 5 * time.Millisecond
	a, b := pair(t, cfg)
	const count = 40
	go func() {
		for i := 0; i < count; i++ {
			a.Send(1, 10, append([]byte{byte(i)}, pattern(2000)...)) //nolint:errcheck
		}
	}()
	for i := 0; i < count; i++ {
		msg, err := b.Recv(10)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Data[0] != byte(i) || len(msg.Data) != 2001 {
			t.Fatalf("message %d: header %d len %d", i, msg.Data[0], len(msg.Data))
		}
	}
	_, _, retrans, _, drops := a.Stats()
	if drops == 0 {
		t.Error("loss injection never dropped anything; test is vacuous")
	}
	if retrans == 0 {
		t.Error("no retransmissions despite injected loss")
	}
}

func TestLiveDuplicationTolerance(t *testing.T) {
	cfg := live.DefaultConfig()
	cfg.DupRate = 0.5
	cfg.Seed = 3
	a, b := pair(t, cfg)
	const count = 30
	go func() {
		for i := 0; i < count; i++ {
			a.Send(1, 11, []byte{byte(i)}) //nolint:errcheck
		}
	}()
	for i := 0; i < count; i++ {
		msg, err := b.Recv(11)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Data[0] != byte(i) {
			t.Fatalf("duplicate leaked or reordered: got %d want %d", msg.Data[0], i)
		}
	}
	// No extra deliveries may be waiting.
	if _, ok := b.TryRecv(11); ok {
		t.Error("duplicate message delivered twice")
	}
}

func TestLiveSendConfirm(t *testing.T) {
	cfg := live.DefaultConfig()
	cfg.LossRate = 0.1
	cfg.Seed = 5
	cfg.RetransmitTimeout = 5 * time.Millisecond
	a, b := pair(t, cfg)
	go func() {
		for {
			if _, err := b.Recv(12); err != nil {
				return
			}
		}
	}()
	done := make(chan error, 1)
	go func() { done <- a.SendConfirm(1, 12, pattern(5000)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SendConfirm never completed under loss")
	}
}

func TestLiveRemoteWrite(t *testing.T) {
	a, b := pair(t, live.DefaultConfig())
	region := b.OpenRegion(13, 4096)
	payload := pattern(1000)
	if err := a.RemoteWrite(1, 13, 256, payload); err != nil {
		t.Fatal(err)
	}
	region.WaitWrites(1)
	snap := region.Snapshot()
	if !bytes.Equal(snap[256:256+len(payload)], payload) {
		t.Fatal("remote write payload corrupted")
	}
	if region.Writes() != 1 {
		t.Fatalf("writes = %d", region.Writes())
	}
}

func TestLiveBidirectional(t *testing.T) {
	a, b := pair(t, live.DefaultConfig())
	const rounds = 50
	errs := make(chan error, 2)
	go func() {
		for i := 0; i < rounds; i++ {
			if err := a.Send(1, 14, []byte{byte(i)}); err != nil {
				errs <- err
				return
			}
			if _, err := a.Recv(14); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	go func() {
		for i := 0; i < rounds; i++ {
			msg, err := b.Recv(14)
			if err != nil {
				errs <- err
				return
			}
			if err := b.Send(0, 14, msg.Data); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestLiveThreeNodeMesh(t *testing.T) {
	cfg := live.DefaultConfig()
	nodes := make([]*live.Node, 3)
	for i := range nodes {
		n, err := live.NewNode(i, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			live.Connect(nodes[i], nodes[j])
		}
	}
	// Node 0 sends a distinct message to each peer; each replies.
	for dst := 1; dst <= 2; dst++ {
		if err := nodes[0].Send(dst, 15, []byte{byte(dst)}); err != nil {
			t.Fatal(err)
		}
	}
	for dst := 1; dst <= 2; dst++ {
		msg, err := nodes[dst].Recv(15)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Src != 0 || msg.Data[0] != byte(dst) {
			t.Fatalf("node %d got src=%d data=%v", dst, msg.Src, msg.Data)
		}
	}
}

func TestLiveCloseUnblocksRecv(t *testing.T) {
	a, err := live.NewNode(0, live.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv(1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != live.ErrClosed {
			t.Fatalf("recv after close: %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestLiveJumboMTUFewerDatagrams(t *testing.T) {
	run := func(mtu int) int64 {
		cfg := live.DefaultConfig()
		cfg.MTU = mtu
		a, b := pair(t, cfg)
		done := make(chan error, 1)
		go func() { done <- a.Send(1, 30, pattern(45_000)) }()
		if _, err := b.Recv(30); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		sent, _, _, _, _ := a.Stats()
		return sent
	}
	std := run(1500)
	jumbo := run(9000)
	if jumbo*4 > std {
		t.Errorf("jumbo used %d datagrams vs %d at 1500; want ~6x fewer", jumbo, std)
	}
}

func TestLiveWindowBackpressure(t *testing.T) {
	// A tiny window over a lossy link: the sender must still complete
	// (window slots recycle via acks and retransmissions).
	cfg := live.DefaultConfig()
	cfg.Window = 4
	cfg.LossRate = 0.1
	cfg.Seed = 2
	cfg.RetransmitTimeout = 5 * time.Millisecond
	a, b := pair(t, cfg)
	done := make(chan error, 1)
	go func() { done <- a.Send(1, 31, pattern(30_000)) }()
	msg, err := b.Recv(31)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Data) != 30_000 {
		t.Fatalf("got %d bytes", len(msg.Data))
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sender stuck on a 4-frame window")
	}
}
