package live_test

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"repro/internal/live"
)

// counterValue reads one counter from a node's telemetry registry.
func counterValue(t *testing.T, n *live.Node, name string) int64 {
	t.Helper()
	for _, m := range n.Telemetry().Snapshot() {
		if m.Name == name && m.Value != nil {
			return int64(*m.Value)
		}
	}
	return 0
}

// TestLivePortDropCountedNotSilent: a full port queue used to drop
// completed messages with no trace anywhere — a slow consumer looked
// exactly like wire loss. The drop must move live_port_drops_total, and
// the node must keep working afterwards.
func TestLivePortDropCountedNotSilent(t *testing.T) {
	a, b := pair(t, live.DefaultConfig())
	// Port queues buffer 64 messages; everything beyond that completes
	// with no consumer and overruns.
	const sends = 80
	for i := 0; i < sends; i++ {
		if err := a.Send(1, 31, []byte("msg")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for counterValue(t, b, "live_port_drops_total") == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	drops := counterValue(t, b, "live_port_drops_total")
	if drops == 0 {
		t.Fatal("port overrun moved no live_port_drops_total")
	}
	// The retained messages still drain, and fresh traffic still flows
	// after the overrun.
	for i := 0; i < sends-int(drops); i++ {
		if _, err := b.Recv(31); err != nil {
			t.Fatalf("recv %d after overrun: %v", i, err)
		}
	}
	if err := a.Send(1, 31, []byte("after")); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv(31)
	if err != nil || string(msg.Data) != "after" {
		t.Fatalf("post-overrun traffic broken: %q, %v", msg.Data, err)
	}
}

// TestLiveBulkEngagesPollAndAggregation: a bulk stream must climb the
// RX ladder — full recvmmsg bursts flip the loop into non-blocking poll
// probes, and adjacent same-peer datagrams dispatch as aggregated runs.
// The counters only move with the Linux burst reader; other platforms
// just verify correctness.
func TestLiveBulkEngagesPollAndAggregation(t *testing.T) {
	a, b := pair(t, live.DefaultConfig())
	payload := pattern(2_000_000)
	done := make(chan error, 1)
	go func() { done <- a.Send(1, 40, payload) }()
	msg, err := b.Recv(40)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg.Data, payload) {
		t.Fatalf("bulk payload corrupted: %d bytes", len(msg.Data))
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if runtime.GOOS != "linux" || (runtime.GOARCH != "amd64" && runtime.GOARCH != "arm64") {
		t.Skip("poll rung and burst aggregation need the recvmmsg reader")
	}
	aggRuns := counterValue(t, b, "live_rx_agg_runs_total")
	aggFrames := counterValue(t, b, "live_rx_agg_frames_total")
	if aggRuns == 0 {
		t.Error("a ~1300-datagram stream produced no aggregated same-peer runs")
	}
	if aggFrames < 2*aggRuns {
		t.Errorf("aggregated frames %d vs runs %d — a run must carry >= 2 datagrams", aggFrames, aggRuns)
	}
	probes := counterValue(t, b, "live_rx_polls_total") + counterValue(t, b, "live_rx_poll_empty_total")
	if probes == 0 {
		t.Error("bulk stream never engaged the poll rung (no non-blocking probes)")
	}
}
