// Command cliclive exercises the functional CLIC implementation over real
// UDP sockets on loopback: it transfers a payload between two in-process
// nodes under injected datagram loss and reports the protocol's work.
//
// Usage:
//
//	cliclive [-loss 0.2] [-size 1000000] [-count 20] [-mtu 1500]
//	    [-metrics-addr 127.0.0.1:9090] [-linger 30s] [-metrics prom|json]
//	    [-profile] [-log-level info] [-log-format text|json]
//
// -profile arms the perfreg stage labels plus the runtime mutex/block
// contention profilers; capture them live from /debug/pprof/mutex and
// /debug/pprof/block on the -metrics-addr mux, and slice CPU captures
// per datapath stage with `go tool pprof -tagfocus clic_stage=<stage>`.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/flight"
	"repro/internal/health"
	"repro/internal/live"
	"repro/internal/perfreg"
	"repro/internal/telemetry"
)

// die reports a fatal error through the same structured handler the
// protocol events use, then exits.
func die(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, slog.Any("err", err))
	os.Exit(1)
}

func main() {
	var (
		loss        = flag.Float64("loss", 0.2, "injected datagram loss rate [0,1)")
		dup         = flag.Float64("dup", 0, "injected datagram duplication rate [0,1)")
		reorder     = flag.Float64("reorder", 0, "injected datagram reordering rate [0,1)")
		maxRetries  = flag.Int("max-retries", 8, "retransmissions before a peer is declared dead (0 = unlimited)")
		size        = flag.Int("size", 100_000, "message size in bytes")
		count       = flag.Int("count", 20, "messages to transfer")
		mtu         = flag.Int("mtu", 1500, "datagram MTU")
		seed        = flag.Int64("seed", 1, "loss-injection seed")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /debug/vars, /debug/clic, /debug/flight and /debug/pprof on this address")
		linger      = flag.Duration("linger", 0, "keep the metrics endpoint up this long after the transfer")
		metrics     = flag.String("metrics", "", "dump final telemetry snapshot to stdout: prom or json")
		flightOn    = flag.Bool("flight", false, "record per-datagram lifecycle spans (wall clock); served at /debug/flight as Chrome Trace JSON")
		logLevel    = flag.String("log-level", "info", "minimum log severity: debug, info, warn or error")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		eventRate   = flag.Int("event-rate", 0, "protocol event rate limit per second (0 = default)")
		profileOn   = flag.Bool("profile", false, "arm pprof stage labels and mutex/block contention profiling")
	)
	flag.Parse()
	logger, err := health.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	if *metrics != "" && *metrics != "prom" && *metrics != "json" {
		die(logger, "unknown metrics format (want prom or json)", fmt.Errorf("got %q", *metrics))
	}

	reg := telemetry.NewRegistry()
	reg.PublishExpvar("clic")
	if *profileOn {
		// Sample every 100th contention event and blocks >= 10 µs: cheap
		// enough to leave on for a whole lossy transfer, dense enough
		// that lock contention in the datapath shows up.
		perfreg.EnableRuntimeProfiles(100, 10_000)
	}
	perfreg.RegisterMetrics(reg)
	var journal *flight.Journal
	if *flightOn {
		journal = flight.New(0)
		journal.InstrumentStages(reg)
	}
	events := health.NewLog(logger, *eventRate)

	cfg := live.DefaultConfig()
	cfg.MTU = *mtu
	cfg.LossRate = *loss
	cfg.DupRate = *dup
	cfg.ReorderRate = *reorder
	cfg.MaxRetries = *maxRetries
	cfg.Seed = *seed
	cfg.RetransmitTimeout = 10 * time.Millisecond
	cfg.Telemetry = reg
	cfg.Flight = journal
	cfg.Health = events

	a, err := live.NewNode(0, cfg)
	if err != nil {
		die(logger, "node 0 start failed", err)
	}
	defer a.Close()
	b, err := live.NewNode(1, cfg)
	if err != nil {
		die(logger, "node 1 start failed", err)
	}
	defer b.Close()
	live.Connect(a, b)

	// The stall watchdog scans both nodes' snapshots on the wall clock,
	// classifying window stalls, RTO storms, pool leaks and RX
	// starvation into clic_health_* metrics and watchdog_verdict events.
	wd := health.NewWatchdog(health.WatchdogConfig{}, nil, events, reg)
	wd.Watch(a, b)
	wdDone := make(chan struct{})
	defer close(wdDone)
	go wd.Run(wdDone)

	capture := func() health.Doc {
		return health.Capture("wall", time.Now().UnixNano(), a, b)
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			die(logger, "metrics listener failed", err)
		}
		mux := reg.Mux()
		mux.Handle("/debug/clic", health.Handler(capture))
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, req *http.Request) {
			if journal == nil {
				http.Error(w, "flight recorder disabled; run with -flight", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			flight.WriteChromeTrace(w, journal.Snapshot()) //nolint:errcheck // client went away
		})
		// The default pprof handlers register on http.DefaultServeMux; this
		// server uses its own mux, so mount them explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("metrics: http://%s/metrics (JSON at /metrics.json, health at /debug/clic, expvar at /debug/vars, flight at /debug/flight, pprof at /debug/pprof/)\n", ln.Addr())
		go http.Serve(ln, mux) //nolint:errcheck // dies with the process
	}

	payload := make([]byte, *size)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	start := time.Now()
	go func() {
		for i := 0; i < *count; i++ {
			if err := a.Send(1, 1, payload); err != nil {
				logger.Error("send failed", slog.Int("msg", i), slog.Any("err", err))
				return
			}
		}
	}()
	bad := 0
	for i := 0; i < *count; i++ {
		msg, err := b.Recv(1)
		if err != nil {
			die(logger, "recv failed", err)
		}
		if !bytes.Equal(msg.Data, payload) {
			bad++
		}
	}
	elapsed := time.Since(start)

	sent, _, retrans, _, drops := a.Stats()
	_, recvd, _, acksSent, _ := b.Stats()
	fmt.Printf("transferred %d x %d B over lossy loopback UDP in %v\n", *count, *size, elapsed.Round(time.Millisecond))
	fmt.Printf("corrupted messages: %d (must be 0)\n", bad)
	fmt.Printf("sender: %d datagrams sent, %d dropped by injection (%.0f%%), %d retransmitted\n",
		sent, drops, 100*float64(drops)/float64(sent+drops), retrans)
	fmt.Printf("receiver: %d datagrams received, %d acknowledgements returned\n", recvd, acksSent)
	if bad != 0 {
		die(logger, "integrity failure", fmt.Errorf("%d corrupted messages", bad))
	}
	fmt.Println("go-back-N recovered every loss; delivery was exact and in order.")

	if *metricsAddr != "" && *linger > 0 {
		fmt.Printf("serving metrics for another %v...\n", *linger)
		time.Sleep(*linger)
	}
	switch *metrics {
	case "prom":
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			die(logger, "prometheus dump failed", err)
		}
	case "json":
		if err := reg.WriteJSON(os.Stdout); err != nil {
			die(logger, "json dump failed", err)
		}
	}
}
