// Command clicbench regenerates the paper's tables and figures on the
// simulated cluster. Each experiment id maps to one artefact of the
// evaluation section (see DESIGN.md's per-experiment index):
//
//	fig4        CLIC bandwidth: MTU 1500/9000 x 0/1-copy      (E1)
//	fig5        CLIC vs TCP/IP bandwidth                      (E2)
//	fig6        CLIC, MPI-CLIC, MPI(TCP), PVM(TCP)            (E3)
//	fig7        1400 B pipeline stage timing                  (E4)
//	headline    §4/§5 summary numbers vs paper                (E5)
//	compare     CLIC vs GAMMA vs VIA                          (E6)
//	interrupts  interrupt rate vs coalescing                  (E7)
//	paths       Fig. 1 send-path ablation                     (E8)
//	frag        NIC fragmentation offload                     (E9)
//	bonding     channel bonding + intra-node                  (E10)
//	loss        injected-loss sweep: recovery cost            (E12)
//	rxmode      adaptive RX ladder: bh/direct/poll            (E16)
//	live        real-sockets loopback perf trajectory         (E15)
//	all         everything above
//
// The live experiment runs wall-clock goroutines over loopback UDP and,
// with -live-out, appends its numbers to a JSON trajectory file
// (BENCH_live.json) that future changes regress against.
//
// Usage:
//
//	clicbench [-chart] [-csv dir] [-live-out BENCH_live.json] [-live-label name] <experiment>...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/model"
)

var experiments = map[string]func(*model.Params) *bench.Report{
	"fig4":        bench.Fig4,
	"fig5":        bench.Fig5,
	"fig6":        bench.Fig6,
	"fig7":        bench.Fig7,
	"headline":    bench.Headline,
	"compare":     bench.Compare,
	"interrupts":  bench.Interrupts,
	"paths":       bench.Paths,
	"frag":        bench.Frag,
	"bonding":     bench.Bonding,
	"multiprog":   bench.Multiprog,
	"collectives": bench.Collectives,
	"jitter":      bench.Jitter,
	"latency":     bench.LatencyDistribution,
	"loss":        bench.LossSweep,
	"rxmode":      bench.RxModes,
	"live":        bench.Live,
}

var order = []string{
	"fig4", "fig5", "fig6", "fig7", "headline",
	"compare", "interrupts", "paths", "frag", "bonding", "multiprog",
	"collectives", "jitter", "latency", "loss", "rxmode", "live",
}

func main() {
	chart := flag.Bool("chart", false, "also render ASCII charts for sweep figures")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files into")
	liveOut := flag.String("live-out", "", "append the live experiment's numbers to this JSON trajectory file")
	liveLabel := flag.String("live-label", "dev", "label for the live trajectory entry")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: clicbench [-chart] [-csv dir] <experiment>...\nexperiments: %v, all\n", order)
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var names []string
	for _, a := range args {
		if a == "all" {
			names = append(names, order...)
			continue
		}
		if _, ok := experiments[a]; !ok {
			fmt.Fprintf(os.Stderr, "clicbench: unknown experiment %q\n", a)
			os.Exit(2)
		}
		names = append(names, a)
	}
	for _, name := range names {
		var rep *bench.Report
		if name == "live" {
			var entry *bench.LiveEntry
			var err error
			rep, entry, err = bench.LiveRun(*liveLabel)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clicbench: live experiment: %v\n", err)
				os.Exit(1)
			}
			if *liveOut != "" {
				if err := bench.AppendLiveEntry(*liveOut, entry); err != nil {
					fmt.Fprintf(os.Stderr, "clicbench: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("   appended trajectory entry %q to %s\n\n", *liveLabel, *liveOut)
			}
		} else {
			rep = experiments[name](nil)
		}
		fmt.Println(rep.Table())
		if *chart {
			if c := rep.Chart(72, 18); c != "" {
				fmt.Println(c)
			}
		}
		if *csvDir != "" && len(rep.Rows) > 0 {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "clicbench: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("   wrote %s\n\n", path)
		}
	}
}
