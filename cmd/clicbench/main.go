// Command clicbench regenerates the paper's tables and figures on the
// simulated cluster. Each experiment id maps to one artefact of the
// evaluation section (see DESIGN.md's per-experiment index):
//
//	fig4        CLIC bandwidth: MTU 1500/9000 x 0/1-copy      (E1)
//	fig5        CLIC vs TCP/IP bandwidth                      (E2)
//	fig6        CLIC, MPI-CLIC, MPI(TCP), PVM(TCP)            (E3)
//	fig7        1400 B pipeline stage timing                  (E4)
//	headline    §4/§5 summary numbers vs paper                (E5)
//	compare     CLIC vs GAMMA vs VIA                          (E6)
//	interrupts  interrupt rate vs coalescing                  (E7)
//	paths       Fig. 1 send-path ablation                     (E8)
//	frag        NIC fragmentation offload                     (E9)
//	bonding     channel bonding + intra-node                  (E10)
//	loss        injected-loss sweep: recovery cost            (E12)
//	rxmode      adaptive RX ladder: bh/direct/poll            (E16)
//	live        real-sockets loopback perf trajectory         (E15)
//	fanin       many-peer fan-in goodput, base vs tuned       (E18)
//	profile     live sweep under CPU profile, per-stage table (E17)
//	report      render the trajectory file as markdown        (E17)
//	all         every simulated + live experiment above (not profile/report)
//
// The live experiment runs wall-clock goroutines over loopback UDP and,
// with -live-out, appends its numbers to a JSON trajectory file
// (BENCH_live.json) that future changes regress against. -runs folds N
// repetitions into median ± MAD; -baseline/-check gate the result
// against a committed baseline (the CI perf gate), -seed-baseline
// writes one, and -canary injects an artificial throughput regression
// to prove the gate fires.
//
// Usage:
//
//	clicbench [-chart] [-csv dir] [-live-out BENCH_live.json] [-live-label name]
//	          [-runs N] [-baseline file [-check] [-canary f]] [-seed-baseline file]
//	          [-cpuprofile file] [-trajectory file] <experiment>...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/model"
	"repro/internal/perfreg"
)

var experiments = map[string]func(*model.Params) *bench.Report{
	"fig4":        bench.Fig4,
	"fig5":        bench.Fig5,
	"fig6":        bench.Fig6,
	"fig7":        bench.Fig7,
	"headline":    bench.Headline,
	"compare":     bench.Compare,
	"interrupts":  bench.Interrupts,
	"paths":       bench.Paths,
	"frag":        bench.Frag,
	"bonding":     bench.Bonding,
	"multiprog":   bench.Multiprog,
	"collectives": bench.Collectives,
	"jitter":      bench.Jitter,
	"latency":     bench.LatencyDistribution,
	"loss":        bench.LossSweep,
	"rxmode":      bench.RxModes,
	"live":        bench.Live,
	"fanin":       bench.FanIn,
}

var order = []string{
	"fig4", "fig5", "fig6", "fig7", "headline",
	"compare", "interrupts", "paths", "frag", "bonding", "multiprog",
	"collectives", "jitter", "latency", "loss", "rxmode", "live", "fanin",
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "clicbench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	chart := flag.Bool("chart", false, "also render ASCII charts for sweep figures")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files into")
	liveOut := flag.String("live-out", "", "append the live experiment's numbers to this JSON trajectory file")
	liveLabel := flag.String("live-label", "dev", "label for the live trajectory entry")
	runs := flag.Int("runs", 0, "live repetitions folded into median ± MAD (default 1, or 3 with -check/-seed-baseline)")
	baselinePath := flag.String("baseline", "", "baseline entry file to compare the live experiment against")
	check := flag.Bool("check", false, "with -baseline: exit 1 if the live run regresses beyond the noise band")
	canary := flag.Float64("canary", 1, "scale measured live throughput by this factor before checking (CI gate self-test)")
	seedBaseline := flag.String("seed-baseline", "", "run the live experiment and write the result to this baseline file")
	cpuprofile := flag.String("cpuprofile", "", "write a stage-labelled CPU profile of the executed experiments to this file")
	trajectory := flag.String("trajectory", "BENCH_live.json", "trajectory file for the report experiment")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: clicbench [flags] <experiment>...\nexperiments: %v, profile, report, all\n", order)
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if (*check || *canary != 1) && *baselinePath == "" {
		fatalf("-check/-canary need -baseline <file>")
	}
	if *runs == 0 {
		*runs = 1
		if *check || *seedBaseline != "" {
			// Gate modes need a MAD band, which needs repetitions.
			*runs = 3
		}
	}

	var names []string
	for _, a := range args {
		if a == "all" {
			names = append(names, order...)
			continue
		}
		if _, ok := experiments[a]; !ok && a != "profile" && a != "report" {
			fmt.Fprintf(os.Stderr, "clicbench: unknown experiment %q\n", a)
			os.Exit(2)
		}
		names = append(names, a)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("%v", err)
		}
		perfreg.Enable() // stage labels make the capture sliceable per stage
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("   wrote CPU profile to %s (slice per stage: go tool pprof -tagfocus %s=<stage>)\n",
				*cpuprofile, perfreg.LabelKey)
		}()
	}

	failed := false
	for _, name := range names {
		var rep *bench.Report
		switch name {
		case "live":
			rep = runLive(*liveLabel, *runs, *liveOut, *baselinePath, *seedBaseline, *canary, *check, &failed)
		case "fanin":
			rep = runFanIn(*liveLabel, *runs, *liveOut, *baselinePath, *seedBaseline, *canary, *check, &failed)
		case "profile":
			if *cpuprofile != "" {
				fatalf("the profile experiment captures its own CPU profile; drop -cpuprofile or run other experiments")
			}
			var err error
			rep, _, err = bench.ProfileRun(*liveLabel)
			if err != nil {
				fatalf("profile experiment: %v", err)
			}
		case "report":
			entries, err := perfreg.LoadTrajectory(*trajectory)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Print(perfreg.Trajectory(entries))
			fmt.Println()
			continue
		default:
			rep = experiments[name](nil)
		}
		fmt.Println(rep.Table())
		if *chart {
			if c := rep.Chart(72, 18); c != "" {
				fmt.Println(c)
			}
		}
		if *csvDir != "" && len(rep.Rows) > 0 {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fatalf("writing %s: %v", path, err)
			}
			fmt.Printf("   wrote %s\n\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runLive executes the live sweep with the observatory modes attached:
// trajectory append, baseline seeding, and the noise-aware regression
// check (with optional canary scaling to prove the gate fires).
func runLive(label string, runs int, liveOut, baselinePath, seedPath string, canary float64, check bool, failed *bool) *bench.Report {
	rep, entry, err := bench.LiveRunN(label, runs)
	if err != nil {
		fatalf("live experiment: %v", err)
	}
	if canary != 1 {
		for i := range entry.Streaming {
			entry.Streaming[i].Mbps *= canary
		}
		rep.Notef("CANARY: measured throughput scaled by %.2f before checking", canary)
	}
	if liveOut != "" {
		if err := bench.AppendLiveEntry(liveOut, entry); err != nil {
			fatalf("%v", err)
		}
		rep.Notef("appended trajectory entry %q to %s", label, liveOut)
	}
	if seedPath != "" {
		if err := perfreg.WriteBaseline(seedPath, entry); err != nil {
			fatalf("%v", err)
		}
		rep.Notef("wrote baseline %s (median of %d runs)", seedPath, runs)
	}
	if baselinePath != "" {
		checkAgainst(baselinePath, entry, check, failed, rep)
	}
	return rep
}

// runFanIn executes the fan-in sweep with the same observatory modes as
// runLive: trajectory append, baseline seeding, and the regression
// check. The canary scales throughput the same way so the fan-in gate
// is self-testable too.
func runFanIn(label string, runs int, liveOut, baselinePath, seedPath string, canary float64, check bool, failed *bool) *bench.Report {
	rep, entry, err := bench.FanInRunN(label, runs)
	if err != nil {
		fatalf("fanin experiment: %v", err)
	}
	if canary != 1 {
		for i := range entry.Streaming {
			entry.Streaming[i].Mbps *= canary
		}
		rep.Notef("CANARY: measured throughput scaled by %.2f before checking", canary)
	}
	if liveOut != "" {
		if err := bench.AppendLiveEntry(liveOut, entry); err != nil {
			fatalf("%v", err)
		}
		rep.Notef("appended trajectory entry %q to %s", label, liveOut)
	}
	if seedPath != "" {
		if err := perfreg.WriteBaseline(seedPath, entry); err != nil {
			fatalf("%v", err)
		}
		rep.Notef("wrote baseline %s (median of %d runs)", seedPath, runs)
	}
	if baselinePath != "" {
		checkAgainst(baselinePath, entry, check, failed, rep)
	}
	return rep
}

// checkAgainst loads the baseline and gates entry against it. A kind
// mismatch (a sweep baseline handed to the fan-in experiment via `all`,
// or vice versa) is skipped with a note instead of producing spurious
// missing-point regressions.
func checkAgainst(baselinePath string, entry *perfreg.Entry, check bool, failed *bool, rep *bench.Report) {
	base, err := perfreg.LoadBaseline(baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	if base.Kind != entry.Kind {
		rep.Notef("baseline %s is kind %q, this experiment is kind %q: check skipped", baselinePath, base.Kind, entry.Kind)
		return
	}
	findings := perfreg.Check(base, entry, perfreg.DefaultCheckConfig())
	fmt.Print(perfreg.Explain(base, entry, findings))
	fmt.Println()
	if check && len(perfreg.Regressions(findings)) > 0 {
		*failed = true
	}
}
