// Command clictrace prints the per-stage pipeline timing of CLIC packets
// (the Fig. 7 instrumentation) for an arbitrary size and configuration —
// the microscope next to clicbench's fixed 1400 B view.
//
// By default it traces one packet and prints its stage checkpoints. With
// -frames N it instead streams N messages through the flight recorder and
// prints the per-stage latency breakdown (p50/p99/mean/max — the automated
// Fig. 7a/7b attribution), the slowest frames as span trees, and any
// receive-path stalls; -flight-out also writes the journal as a Chrome
// Trace JSON viewable in Perfetto.
//
// Usage:
//
//	clictrace [-size 1400] [-mtu 1500] [-rx bh|direct|poll] [-path 1..4] [-coalesce-us 40] [-json]
//	clictrace -frames 200 [-slowest 3] [-stall-us 100] [-flight-out trace.json] [...]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/clic"
	"repro/internal/flight"
	"repro/internal/model"
	"repro/internal/trace"
)

func main() {
	var (
		size       = flag.Int("size", 1400, "packet size in bytes (the paper uses 1400)")
		mtu        = flag.Int("mtu", 1500, "link MTU")
		rxMode     = flag.String("rx", "bh", "receive mode: bh (Fig. 8a), direct (Fig. 8b) or poll (NAPI-style)")
		path       = flag.Int("path", 2, "send path 1-4 (Fig. 1)")
		coalesceUs = flag.Int("coalesce-us", 40, "interrupt coalescing window, µs")
		asJSON     = flag.Bool("json", false, "emit the stage timings as JSON instead of a table")
		frames     = flag.Int("frames", 0, "flight-recorder mode: stream this many messages and print the per-stage latency breakdown")
		slowest    = flag.Int("slowest", 3, "with -frames: show the N slowest frames as span trees")
		stallUs    = flag.Int("stall-us", 100, "with -frames: flag receive-path queueing spans longer than this, µs")
		flightOut  = flag.String("flight-out", "", "with -frames: write the journal as Chrome Trace JSON to this file")
	)
	flag.Parse()

	params := model.Default()
	params.NIC.MTU = *mtu
	params.NIC.CoalesceUsecs = *coalesceUs

	opt := clic.Options{SendPath: clic.SendPath(*path), RxMode: clic.RxBottomHalf}
	switch *rxMode {
	case "bh":
	case "direct":
		opt.RxMode = clic.RxDirectCall
	case "poll":
		opt.RxMode = clic.RxPoll
	default:
		fmt.Fprintf(os.Stderr, "clictrace: unknown rx mode %q\n", *rxMode)
		os.Exit(2)
	}

	if *frames > 0 {
		flightMode(&params, opt, *size, *frames, *slowest, *stallUs, *flightOut, *rxMode)
		return
	}

	rec := bench.PipelineTrace(&params, opt, *size)
	if *asJSON {
		if err := rec.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "clictrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println(rec.Label)
	fmt.Print(rec.Table())
	if end, ok := rec.Find(trace.StageAppRecvReturn); ok {
		fmt.Printf("one-way total: %.2f µs\n", float64(end)/1000)
	}
}

// flightMode runs the always-on recorder over a message stream and prints
// the journal-derived latency attribution.
func flightMode(params *model.Params, opt clic.Options, size, frames, slowest, stallUs int, flightOut, rxMode string) {
	j := bench.FlightRun(params, opt, size, frames)
	a := flight.Analyze(j.Snapshot())

	mode := "bottom-half"
	switch rxMode {
	case "direct":
		mode = "direct-call"
	case "poll":
		mode = "polled"
	}
	fmt.Printf("CLIC %d B x %d messages, %s receive — per-stage latency from the flight recorder\n",
		size, frames, mode)
	fmt.Print(a.BreakdownTable())

	if slowest > 0 {
		fmt.Printf("\nslowest %d frames (end-to-end):\n", slowest)
		for _, fs := range a.SlowestFrames(slowest) {
			fmt.Print(fs.Tree())
		}
	}

	threshold := time.Duration(stallUs) * time.Microsecond
	if stalls := a.Stalls(int64(threshold)); len(stalls) > 0 {
		fmt.Printf("\nstalls (receive-path queueing > %d µs): %d\n", stallUs, len(stalls))
		for i, s := range stalls {
			if i == 10 {
				fmt.Printf("  ... and %d more\n", len(stalls)-10)
				break
			}
			fmt.Printf("  frame %d  %-12s %8.2f µs on %s\n",
				s.Frame, s.Stage, float64(s.Dur())/1000, s.Node)
		}
	}

	if flightOut != "" {
		f, err := os.Create(flightOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clictrace: %v\n", err)
			os.Exit(1)
		}
		if err := flight.WriteChromeTrace(f, j.Snapshot()); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "clictrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome Trace JSON to %s (open in Perfetto: ui.perfetto.dev)\n", flightOut)
	}
}
