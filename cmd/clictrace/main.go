// Command clictrace prints the per-stage pipeline timing of one CLIC
// packet (the Fig. 7 instrumentation) for an arbitrary size and
// configuration — the microscope next to clicbench's fixed 1400 B view.
//
// Usage:
//
//	clictrace [-size 1400] [-mtu 1500] [-rx bh|direct] [-path 1..4] [-coalesce-us 40] [-json]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/clic"
	"repro/internal/model"
)

func main() {
	var (
		size       = flag.Int("size", 1400, "packet size in bytes (the paper uses 1400)")
		mtu        = flag.Int("mtu", 1500, "link MTU")
		rxMode     = flag.String("rx", "bh", "receive mode: bh (Fig. 8a) or direct (Fig. 8b)")
		path       = flag.Int("path", 2, "send path 1-4 (Fig. 1)")
		coalesceUs = flag.Int("coalesce-us", 40, "interrupt coalescing window, µs")
		asJSON     = flag.Bool("json", false, "emit the stage timings as JSON instead of a table")
	)
	flag.Parse()

	params := model.Default()
	params.NIC.MTU = *mtu
	params.NIC.CoalesceUsecs = *coalesceUs

	opt := clic.Options{SendPath: clic.SendPath(*path), RxMode: clic.RxBottomHalf}
	switch *rxMode {
	case "bh":
	case "direct":
		opt.RxMode = clic.RxDirectCall
	default:
		fmt.Fprintf(os.Stderr, "clictrace: unknown rx mode %q\n", *rxMode)
		os.Exit(2)
	}

	rec := bench.PipelineTrace(&params, opt, *size)
	if *asJSON {
		if err := rec.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "clictrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println(rec.Label)
	fmt.Print(rec.Table())
	if end, ok := rec.Find("app:recv-return"); ok {
		fmt.Printf("one-way total: %.2f µs\n", float64(end)/1000)
	}
}
