// Command cliclint is the multichecker driver for the CLIC invariant
// suite: it loads the requested packages from source (offline, stdlib
// only) and applies every registered analyzer, printing findings in the
// usual file:line:col format and exiting non-zero when any are found.
//
// Usage:
//
//	go run ./cmd/cliclint ./...            # whole tree (what make lint runs)
//	go run ./cmd/cliclint ./internal/clic  # one package
//	go run ./cmd/cliclint -tests ./...     # include in-package _test.go files
//	go run ./cmd/cliclint -list            # show the analyzers and exit
//
// The suite encodes the invariants the paper's layer-deletion argument
// leans on (see DESIGN.md, "Static analysis & invariants"):
//
//	clicerr         Send-family transport errors must not be discarded
//	simtime         sim-clock packages must not read wall time or the
//	                global rand source
//	bufown          zero-copy buffers must not be touched after handoff
//	metricname      telemetry names/label keys constant and snake_case
//	tracestage      trace marks and flight-journal stage names must be
//	                the named constants from repro/internal/trace
//	lockorder       //lockorder: rank hierarchy: ranks strictly
//	                increase along every acquisition chain
//	blockunderlock  no blocking operation under a ranked lock (unless
//	                declared blockok)
//	atomicmix       no plain access to atomically-accessed variables;
//	                64-bit atomics aligned on 32-bit layouts
//
// cliclint complements `go vet` (which make lint also runs); it does
// not replace it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/blockunderlock"
	"repro/internal/analysis/bufown"
	"repro/internal/analysis/clicerr"
	"repro/internal/analysis/loader"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/simtime"
	"repro/internal/analysis/tracestage"
)

// analyzers is the suite, in report order.
var analyzers = []*analysis.Analyzer{
	clicerr.Analyzer,
	simtime.Analyzer,
	bufown.Analyzer,
	metricname.Analyzer,
	tracestage.Analyzer,
	lockorder.Analyzer,
	blockunderlock.Analyzer,
	atomicmix.Analyzer,
}

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	simtimePkgs := flag.String("simtime.pkgs", "",
		"comma-separated package-path regexps simtime applies to (overrides the built-in list)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cliclint [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *simtimePkgs != "" {
		simtime.Packages = strings.Split(*simtimePkgs, ",")
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(loader.Config{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cliclint: %v\n", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				found++
				fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, a.Name)
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "cliclint: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "cliclint: %d finding(s)\n", found)
		os.Exit(1)
	}
}
