// Command clicsim runs one-off cluster experiments from flags — the
// exploration tool next to clicbench's fixed figure set. It builds a
// cluster, streams messages from node 0 to node 1 over the chosen stack,
// and prints throughput, latency and subsystem counters.
//
// Examples:
//
//	clicsim -stack clic -mtu 9000 -size 1000000 -count 16
//	clicsim -stack tcp -size 65536 -count 64
//	clicsim -stack clic -rx direct -path 3 -coalesce-us 100
//	clicsim -stack gamma -size 0 -count 100 -pingpong
//	clicsim -stack clic -metrics prom
//	clicsim -stack clic -metrics json -metrics-every-us 500
//	clicsim -stack clic -loss 0.3 -health-out health.json -health-scan-us 1000
//	clicsim -stack clic -profile -debug-addr 127.0.0.1:9091 -linger 30s
//
// -debug-addr serves /metrics, /metrics.json, /debug/clic (503 until the
// run finishes) and /debug/pprof on a wall-clock HTTP mux next to the
// simulation; -profile arms the perfreg stage labels plus mutex/block
// contention profiling so those pprof endpoints have data; -linger keeps
// the process (and the mux) alive after the run for scraping.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/chrometrace"
	"repro/internal/clic"
	"repro/internal/cluster"
	"repro/internal/flight"
	"repro/internal/health"
	"repro/internal/model"
	"repro/internal/pcap"
	"repro/internal/perfreg"
	"repro/internal/sim"
)

// mustSend aborts on a transport send error: the benchmark scenarios
// run with enough retry budget that a failure means a broken setup, and
// a dropped error would leave the peer blocked in Recv.
func mustSend(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	var (
		stack      = flag.String("stack", "clic", "protocol stack: clic, tcp, via, gamma")
		mtu        = flag.Int("mtu", 1500, "link MTU (1500 or 9000 for jumbo)")
		size       = flag.Int("size", 65536, "message size in bytes")
		count      = flag.Int("count", 16, "messages to transfer")
		nics       = flag.Int("nics", 1, "NICs per node (channel bonding)")
		rxMode     = flag.String("rx", "bh", "CLIC receive mode: bh (bottom halves), direct or poll (NAPI-style)")
		path       = flag.Int("path", 2, "CLIC send path 1-4 (Fig. 1)")
		coalesceUs = flag.Int("coalesce-us", 40, "NIC interrupt coalescing window, µs")
		pingpong   = flag.Bool("pingpong", false, "measure ping-pong latency instead of streaming")
		seed       = flag.Int64("seed", 1, "simulation seed")
		loss       = flag.Float64("loss", 0, "injected frame loss rate [0,1)")
		dup        = flag.Float64("dup", 0, "injected frame duplication rate [0,1)")
		reorder    = flag.Float64("reorder", 0, "injected frame reordering rate [0,1)")
		corrupt    = flag.Float64("corrupt", 0, "injected frame corruption (FCS-discard) rate [0,1)")
		maxRetries = flag.Int("max-retries", 0, "CLIC retransmissions before the channel fails (0 = unlimited)")
		pcapPath   = flag.String("pcap", "", "write the switch's traffic to this libpcap file")
		tracePath  = flag.String("chrometrace", "", "write resource-occupancy timeline as Chrome Trace JSON")
		flightOut  = flag.String("flight-out", "", "record every frame's lifecycle and write the journal as Chrome Trace JSON")
		metrics    = flag.String("metrics", "", "dump final telemetry snapshot: prom or json")
		metricsOut = flag.String("metrics-out", "", "write metrics to this file instead of stdout")
		metricsUs  = flag.Int64("metrics-every-us", 0, "also dump a JSON snapshot every N simulated µs")
		healthOut  = flag.String("health-out", "", "write the final cluster health document (clicstat format) to this file")
		healthUs   = flag.Int64("health-scan-us", 0, "run the stall watchdog every N simulated µs (CLIC only)")
		logLevel   = flag.String("log-level", "info", "minimum log severity: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /metrics.json, /debug/clic and /debug/pprof on this address")
		profileOn  = flag.Bool("profile", false, "arm pprof stage labels and mutex/block contention profiling")
		linger     = flag.Duration("linger", 0, "keep the process (and -debug-addr endpoints) up this long after the run")
	)
	flag.Parse()
	if *profileOn {
		// Same sampling knobs as cliclive -profile: every 100th
		// contention event, blocks >= 10 µs.
		perfreg.EnableRuntimeProfiles(100, 10_000)
	}

	logger, err := health.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	die := func(err error) {
		logger.Error("clicsim failed", slog.Any("err", err))
		os.Exit(1)
	}

	if *metrics != "" && *metrics != "prom" && *metrics != "json" {
		die(fmt.Errorf("unknown metrics format %q (want prom or json)", *metrics))
	}
	metricsW := io.Writer(os.Stdout)
	if *metricsOut != "" {
		file, err := os.Create(*metricsOut)
		if err != nil {
			die(err)
		}
		defer file.Close()
		metricsW = file
	}

	params := model.Default()
	params.NIC.MTU = *mtu
	params.NIC.CoalesceUsecs = *coalesceUs
	params.Link.LossRate = *loss
	params.Link.DupRate = *dup
	params.Link.ReorderRate = *reorder
	params.Link.CorruptRate = *corrupt
	params.CLIC.MaxRetries = *maxRetries

	var journal *flight.Journal
	if *flightOut != "" {
		journal = flight.New(0)
	}
	// The protocol event log stamps every event with simulated time;
	// the engine clock is attached right after the cluster builds it.
	events := health.NewLog(logger, 0)
	c := cluster.New(cluster.Config{Nodes: 2, NICsPerNode: *nics, Seed: *seed, Params: &params,
		Flight: journal, Health: events})
	events.WithClock(func() int64 { return int64(c.Eng.Now()) })
	perfreg.RegisterMetrics(c.Tel)

	// /debug/clic serves the final health document. Unlike the live
	// stack's lock-narrow mid-run capture, the sim's snapshot is only
	// consistent at engine quiesce, so a scrape during the run gets 503.
	var finalDoc atomic.Pointer[health.Doc]
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			die(err)
		}
		mux := c.Tel.Mux()
		mux.HandleFunc("/debug/clic", func(w http.ResponseWriter, _ *http.Request) {
			doc := finalDoc.Load()
			if doc == nil {
				http.Error(w, "run in progress; the health document is captured at quiesce",
					http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(doc) //nolint:errcheck // client went away
		})
		// The default pprof handlers register on http.DefaultServeMux;
		// this server uses the registry's own mux, so mount explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("debug: http://%s/metrics (JSON at /metrics.json, health at /debug/clic, pprof at /debug/pprof/)\n", ln.Addr())
		go http.Serve(ln, mux) //nolint:errcheck // dies with the process
	}
	if journal != nil {
		journal.InstrumentStages(c.Tel)
		if *tracePath == "" {
			// Fold the resource-occupancy timeline into the flight trace so
			// frame spans and CPU/PCI/memory-bus busy spans share one view.
			// Each resource has a single OnSpan slot, so -chrometrace keeps
			// priority over it when both flags are given.
			for _, n := range c.Nodes {
				for _, r := range []*sim.Resource{n.Host.CPU, n.Host.PCI, n.Host.MemBus} {
					res := r
					res.OnSpan = func(start, end sim.Time) {
						journal.Resource(res.Name(), int64(start), int64(end))
					}
				}
			}
		}
		defer func() {
			file, err := os.Create(*flightOut)
			if err != nil {
				die(err)
			}
			defer file.Close()
			if err := flight.WriteChromeTrace(file, journal.Snapshot()); err != nil {
				die(err)
			}
			fmt.Printf("wrote %d flight events to %s (open in ui.perfetto.dev)\n",
				journal.Len(), *flightOut)
		}()
	}

	// The sim watchdog reads engine time and is driven by Scan calls
	// between stepped RunUntil slices — a self-rescheduling scan event
	// would keep the queue non-empty and Run would never return.
	var wd *health.Watchdog
	if *healthUs > 0 {
		wd = health.NewWatchdog(health.WatchdogConfig{},
			func() int64 { return int64(c.Eng.Now()) }, events, c.Tel)
	}

	// driveMeasured drives the measurement phase. With -metrics-every-us
	// or -health-scan-us it steps the engine in fixed simulated-time
	// slices, dumping a JSON snapshot or scanning the watchdog at each
	// boundary.
	driveMeasured := func() {
		type tick struct {
			every sim.Time
			next  sim.Time
			fn    func()
		}
		var ticks []tick
		if *metricsUs > 0 {
			ticks = append(ticks, tick{every: sim.Time(*metricsUs) * sim.Microsecond, fn: func() {
				if err := c.Tel.WriteJSONAt(metricsW, float64(c.Eng.Now())/1000); err != nil {
					die(err)
				}
			}})
		}
		if wd != nil {
			ticks = append(ticks, tick{every: sim.Time(*healthUs) * sim.Microsecond, fn: func() { wd.Scan() }})
		}
		if len(ticks) == 0 {
			c.Run()
			return
		}
		for i := range ticks {
			ticks[i].next = c.Eng.Now() + ticks[i].every
		}
		for {
			limit := ticks[0].next
			for _, t := range ticks[1:] {
				if t.next < limit {
					limit = t.next
				}
			}
			c.Eng.RunUntil(limit)
			if c.Eng.Pending() == 0 {
				return
			}
			now := c.Eng.Now()
			for i := range ticks {
				if now >= ticks[i].next {
					ticks[i].fn()
					ticks[i].next += ticks[i].every
				}
			}
		}
	}
	// With -profile the whole drive runs under the sim-driver stage
	// label, so a CPU capture separates engine work from the serving
	// goroutines.
	runMeasured := func() {
		if perfreg.Enabled() {
			perfreg.Do(context.Background(), perfreg.StageDriver, driveMeasured)
			return
		}
		driveMeasured()
	}

	if *pcapPath != "" {
		file, err := os.Create(*pcapPath)
		if err != nil {
			die(err)
		}
		defer file.Close()
		capture, err := pcap.NewWriter(file)
		if err != nil {
			die(err)
		}
		pcap.Tap(c.Eng, c.Switch, capture)
		defer func() {
			fmt.Printf("wrote %d frames to %s\n", capture.Frames(), *pcapPath)
		}()
	}

	if *tracePath != "" {
		rec := chrometrace.NewRecorder()
		chrometrace.WatchCluster(rec, c)
		defer func() {
			file, err := os.Create(*tracePath)
			if err != nil {
				die(err)
			}
			defer file.Close()
			if err := rec.Flush(file); err != nil {
				die(err)
			}
			fmt.Printf("wrote %d timeline events to %s (open in ui.perfetto.dev)\n",
				rec.Events(), *tracePath)
		}()
	}

	var send func(p *sim.Proc, data []byte)
	var recv func(p *sim.Proc, n int) []byte
	var sendBack func(p *sim.Proc, data []byte)
	var recvBack func(p *sim.Proc, n int) []byte

	switch *stack {
	case "clic":
		opt := clic.Options{SendPath: clic.SendPath(*path), RxMode: clic.RxBottomHalf}
		switch *rxMode {
		case "bh":
		case "direct":
			opt.RxMode = clic.RxDirectCall
		case "poll":
			opt.RxMode = clic.RxPoll
		default:
			die(fmt.Errorf("unknown rx mode %q (want bh, direct or poll)", *rxMode))
		}
		c.EnableCLIC(opt)
		if wd != nil {
			for _, n := range c.Nodes {
				wd.Watch(n.CLIC)
			}
		}
		send = func(p *sim.Proc, d []byte) { mustSend(c.Nodes[0].CLIC.Send(p, 1, 7, d)) }
		recv = func(p *sim.Proc, n int) []byte { _, d := c.Nodes[1].CLIC.Recv(p, 7); return d }
		sendBack = func(p *sim.Proc, d []byte) { mustSend(c.Nodes[1].CLIC.Send(p, 0, 7, d)) }
		recvBack = func(p *sim.Proc, n int) []byte { _, d := c.Nodes[0].CLIC.Recv(p, 7); return d }
	case "tcp":
		c.EnableTCP()
		l := c.Nodes[1].TCP.Listen(5001)
		c.Go("accept", func(p *sim.Proc) {
			conn := l.Accept(p)
			recv = func(p *sim.Proc, n int) []byte { d, _ := conn.ReadFull(p, n); return d }
			sendBack = func(p *sim.Proc, d []byte) { conn.Send(p, d) }
		})
		c.Go("dial", func(p *sim.Proc) {
			conn := c.Nodes[0].TCP.Dial(p, 1, 5001)
			send = func(p *sim.Proc, d []byte) { conn.Send(p, d) }
			recvBack = func(p *sim.Proc, n int) []byte { d, _ := conn.ReadFull(p, n); return d }
		})
		c.Run()
	case "via":
		c.EnableVIA()
		vi0 := c.Nodes[0].VIA.Open(1, 1)
		vi1 := c.Nodes[1].VIA.Open(0, 1)
		send = func(p *sim.Proc, d []byte) { vi0.Send(p, d) }
		recv = func(p *sim.Proc, n int) []byte { return vi1.Recv(p) }
		sendBack = func(p *sim.Proc, d []byte) { vi1.Send(p, d) }
		recvBack = func(p *sim.Proc, n int) []byte { return vi0.Recv(p) }
	case "gamma":
		c.EnableGAMMA()
		send = func(p *sim.Proc, d []byte) { c.Nodes[0].GAMMA.Send(p, 1, 7, d) }
		recv = func(p *sim.Proc, n int) []byte { return c.Nodes[1].GAMMA.Recv(p, 7) }
		sendBack = func(p *sim.Proc, d []byte) { c.Nodes[1].GAMMA.Send(p, 0, 7, d) }
		recvBack = func(p *sim.Proc, n int) []byte { return c.Nodes[0].GAMMA.Recv(p, 7) }
	default:
		die(fmt.Errorf("unknown stack %q", *stack))
	}

	payload := make([]byte, *size)
	if *pingpong {
		var rtt sim.Time
		c.Go("pinger", func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < *count; i++ {
				send(p, payload)
				recvBack(p, *size)
			}
			rtt = (p.Now() - start) / sim.Time(*count)
		})
		c.Go("ponger", func(p *sim.Proc) {
			for i := 0; i < *count; i++ {
				recv(p, *size)
				sendBack(p, payload)
			}
		})
		runMeasured()
		fmt.Printf("%s %dB ping-pong: RTT %.1f µs, one-way %.1f µs\n",
			*stack, *size, float64(rtt)/1000, float64(rtt)/2000)
	} else {
		var start, end sim.Time
		c.Go("streamer", func(p *sim.Proc) {
			start = p.Now()
			for i := 0; i < *count; i++ {
				send(p, payload)
			}
		})
		c.Go("sink", func(p *sim.Proc) {
			for i := 0; i < *count; i++ {
				recv(p, *size)
			}
			end = p.Now()
		})
		runMeasured()
		bits := float64(*count) * float64(*size) * 8
		secs := float64(end-start) / 1e9
		fmt.Printf("%s: %d x %d B in %.3f ms = %.1f Mb/s\n",
			*stack, *count, *size, secs*1000, bits/secs/1e6)
	}

	if wd != nil {
		// One final scan so conditions present at quiesce are reported.
		for _, v := range wd.Scan() {
			fmt.Printf("watchdog: %s on %s peer %d: %s\n", v.Condition, v.Node, v.Peer, v.Detail)
		}
	}
	quiesced := c.HealthDoc()
	finalDoc.Store(&quiesced)
	if *healthOut != "" {
		doc := quiesced
		file, err := os.Create(*healthOut)
		if err != nil {
			die(err)
		}
		enc := json.NewEncoder(file)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			die(err)
		}
		if err := file.Close(); err != nil {
			die(err)
		}
		fmt.Printf("wrote health document (%d nodes, %d link dirs) to %s\n",
			len(doc.Nodes), len(doc.Links), *healthOut)
	}

	for i, n := range c.Nodes {
		fmt.Printf("node%d: %d syscalls, %d interrupts, %d bottom halves, %d wakeups, cpu busy %.2f ms\n",
			i, n.Kernel.Syscalls.Value(), n.Kernel.Interrupts.Value(),
			n.Kernel.BottomHalfs.Value(), n.Kernel.Wakeups.Value(),
			float64(n.Host.CPU.BusyTime())/1e6)
		for _, adapter := range n.NICs {
			fmt.Printf("  %s: tx %d rx %d frames, %d IRQs, %d ring drops, %d filtered\n",
				adapter.Name, adapter.TxFrames.Value(), adapter.RxFrames.Value(),
				adapter.IRQsFired.Value(), adapter.RxDrops.Value(), adapter.RxFiltered.Value())
		}
	}

	switch *metrics {
	case "prom":
		err = c.Tel.WritePrometheus(metricsW)
	case "json":
		err = c.Tel.WriteJSONAt(metricsW, float64(c.Eng.Now())/1000)
	}
	if err != nil {
		die(err)
	}

	if *debugAddr != "" && *linger > 0 {
		fmt.Printf("serving debug endpoints for another %v...\n", *linger)
		time.Sleep(*linger)
	}
}
