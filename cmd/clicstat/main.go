// Command clicstat renders a CLIC health document — the JSON served at
// cliclive's /debug/clic endpoint or written by clicsim -health-out —
// as a top-style terminal view of peers and channels, sorted by stall
// severity or transfer rate.
//
// Usage:
//
//	clicstat -url http://127.0.0.1:9090/debug/clic          one-shot
//	clicstat -url http://127.0.0.1:9090/debug/clic -watch 1s live view
//	clicstat -file health.json                              from a file
//	clicstat -file health.json -sort rate
//
// In -watch mode the view refreshes in place and per-channel rates are
// computed from consecutive samples (sequence delta over elapsed time);
// a one-shot render has no rate column. Exit a watch with Ctrl-C.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/health"
)

func main() {
	var (
		url     = flag.String("url", "http://127.0.0.1:9090/debug/clic", "health endpoint to read")
		file    = flag.String("file", "", "read the health document from this file instead of -url")
		watch   = flag.Duration("watch", 0, "refresh interval for a live top-style view (0 = one-shot)")
		samples = flag.Int("samples", 0, "in watch mode, exit after this many refreshes (0 = run until interrupted)")
		sortBy  = flag.String("sort", "stall", "channel order: stall, rate or peer")
	)
	flag.Parse()
	switch *sortBy {
	case "stall", "rate", "peer":
	default:
		fmt.Fprintf(os.Stderr, "clicstat: unknown sort %q (want stall, rate or peer)\n", *sortBy)
		os.Exit(2)
	}

	var prev *health.Doc
	for i := 0; ; i++ {
		doc, err := fetch(*url, *file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clicstat: %v\n", err)
			os.Exit(1)
		}
		if *watch > 0 {
			fmt.Print("\x1b[2J\x1b[H") // clear and home, top-style
		}
		render(os.Stdout, doc, prev, *sortBy)
		if *watch <= 0 || (*samples > 0 && i+1 >= *samples) {
			return
		}
		prev = doc
		time.Sleep(*watch)
	}
}

// fetch reads the health document from a file or an HTTP endpoint.
func fetch(url, file string) (*health.Doc, error) {
	var doc health.Doc
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", file, err)
		}
		return &doc, nil
	}
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return &doc, nil
}

// row is one channel prepared for display.
type row struct {
	node string
	ch   health.ChannelSnapshot
	// stallNs is time since the channel's last forward progress, against
	// the document's capture time.
	stallNs int64
	// rate is frames/s against the previous sample; NaN-free: -1 means
	// unknown (no previous sample).
	rate float64
}

// render writes the document as a table. prev, when non-nil, is the
// previous sample for rate computation (watch mode).
func render(w *os.File, doc, prev *health.Doc, sortBy string) {
	fmt.Fprintf(w, "clicstat  clock=%s  captured=%s  nodes=%d  links=%d\n\n",
		doc.Clock, stamp(doc), len(doc.Nodes), len(doc.Links))

	var rows []row
	for ni := range doc.Nodes {
		node := &doc.Nodes[ni]
		for _, ch := range node.Channels {
			r := row{node: node.Node, ch: ch, rate: -1}
			if ch.LastProgressNs > 0 && node.CapturedNs > ch.LastProgressNs {
				r.stallNs = node.CapturedNs - ch.LastProgressNs
			}
			if p := findChan(prev, node.Node, ch.Peer, ch.Dir); p != nil {
				dt := float64(node.CapturedNs - prevNode(prev, node.Node).CapturedNs)
				if dt > 0 {
					var df uint32
					if ch.Dir == "tx" {
						df = ch.NextSeq - p.NextSeq
					} else {
						df = ch.CumAck - p.CumAck
					}
					r.rate = float64(df) / (dt / 1e9)
				}
			}
			rows = append(rows, r)
		}
	}
	sortRows(rows, sortBy)

	fmt.Fprintf(w, "%-8s %5s %-3s %7s %7s %7s %5s %10s %10s %9s %9s %5s %10s %10s\n",
		"NODE", "PEER", "DIR", "WINDOW", "INFLT", "CREDIT", "PACE", "NEXT/CUM", "ACKED", "RTO", "SRTT", "RETR", "STALL", "RATE")
	for _, r := range rows {
		ch := &r.ch
		seq, acked := fmt.Sprint(ch.NextSeq), fmt.Sprint(ch.AckedSeq)
		win, inflt := fmt.Sprint(ch.Window), fmt.Sprint(ch.InFlight)
		rto, srtt := durOrDash(ch.RTONs), durOrDash(ch.SRTTNs)
		// CREDIT is the flow-control budget seen from each side: on tx the
		// peer's last advertised credit (dash until one arrives — legacy
		// acks never advertise), on rx what this channel last advertised.
		// PACE is the tx retransmit backlog the pacer is still holding.
		credit, pace := "-", fmt.Sprint(ch.PacedBacklog)
		if ch.Credit >= 0 {
			credit = fmt.Sprint(ch.Credit)
		}
		if ch.Dir == "rx" {
			seq, acked = fmt.Sprint(ch.CumAck), "-"
			win, inflt = "-", fmt.Sprintf("p%d", ch.Parked)
			rto, srtt = "-", "-"
			credit, pace = fmt.Sprint(ch.AdvCredit), "-"
		}
		mark := " "
		if ch.Failed {
			mark = "!"
		}
		fmt.Fprintf(w, "%-8s %5d %-3s%s %6s %7s %7s %5s %10s %10s %9s %9s %5d %10s %10s\n",
			r.node, ch.Peer, ch.Dir, mark, win, inflt, credit, pace, seq, acked, rto, srtt,
			ch.Retries, durOrDash(r.stallNs), rateOrDash(r.rate))
	}

	for ni := range doc.Nodes {
		node := &doc.Nodes[ni]
		var extra []string
		// One entry per RX shard: frames/bursts, plus the poll-mode hit
		// rate when the adaptive ladder has been polling.
		for _, sh := range node.Shards {
			s := fmt.Sprintf("shard%d %df/%db", sh.Shard, sh.Frames, sh.Bursts)
			if sh.Polls > 0 {
				s += fmt.Sprintf(" (%d polls, %d empty)", sh.Polls, sh.PollEmpty)
			}
			extra = append(extra, s)
		}
		if node.Pool != nil {
			extra = append(extra, fmt.Sprintf("pool %d out (%d gets, %d puts, %d allocs)",
				node.Pool.Outstanding, node.Pool.Gets, node.Pool.Puts, node.Pool.Allocs))
		}
		for _, k := range sortedKeys(node.Counters) {
			extra = append(extra, fmt.Sprintf("%s %d", k, node.Counters[k]))
		}
		if len(extra) > 0 {
			fmt.Fprintf(w, "\n%s: %s\n", node.Node, strings.Join(extra, ", "))
		}
	}
	if len(doc.Links) > 0 {
		fmt.Fprintf(w, "\n%-14s %-5s %10s %12s %7s %6s %8s %8s %6s\n",
			"LINK", "DIR", "FRAMES", "BYTES", "DROPS", "DUPS", "REORDER", "CORRUPT", "UTIL")
		for _, l := range doc.Links {
			fmt.Fprintf(w, "%-14s %-5s %10d %12d %7d %6d %8d %8d %5.1f%%\n",
				l.Link, l.Dir, l.Frames, l.Bytes, l.Drops, l.Dups, l.Reorders, l.Corrupts,
				100*l.Utilization)
		}
	}
}

func sortRows(rows []row, by string) {
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := &rows[i], &rows[j]
		switch by {
		case "stall":
			if a.stallNs != b.stallNs {
				return a.stallNs > b.stallNs
			}
		case "rate":
			if a.rate != b.rate {
				return a.rate > b.rate
			}
		}
		if a.node != b.node {
			return a.node < b.node
		}
		if a.ch.Peer != b.ch.Peer {
			return a.ch.Peer < b.ch.Peer
		}
		return a.ch.Dir < b.ch.Dir
	})
}

// findChan locates the same channel in the previous sample.
func findChan(prev *health.Doc, node string, peer int, dir string) *health.ChannelSnapshot {
	n := prevNode(prev, node)
	if n == nil {
		return nil
	}
	for i := range n.Channels {
		ch := &n.Channels[i]
		if ch.Peer == peer && ch.Dir == dir {
			return ch
		}
	}
	return nil
}

func prevNode(prev *health.Doc, node string) *health.NodeSnapshot {
	if prev == nil {
		return nil
	}
	for i := range prev.Nodes {
		if prev.Nodes[i].Node == node {
			return &prev.Nodes[i]
		}
	}
	return nil
}

// stamp formats the document capture time: an absolute time for wall
// clocks, a duration offset for simulated ones.
func stamp(doc *health.Doc) string {
	if doc.Clock == "sim" {
		return fmt.Sprintf("t+%v", time.Duration(doc.CapturedNs))
	}
	return time.Unix(0, doc.CapturedNs).Format("15:04:05.000")
}

func durOrDash(ns int64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

func rateOrDash(rate float64) string {
	if rate < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f f/s", rate)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
