GO ?= go

.PHONY: build test lint check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs go vet plus cliclint, the in-tree go/analysis suite that
# enforces the CLIC invariants (see DESIGN.md, "Static analysis &
# invariants"): clicerr, simtime, bufown, metricname.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/cliclint ./...

# check is the full gate: build, lint, and the test suite under the race
# detector (the live stack runs real goroutines).
check: build lint
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/clicbench all
