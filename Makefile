GO ?= go

.PHONY: build test lint check bench bench-live perf-gate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs go vet plus cliclint, the in-tree go/analysis suite that
# enforces the CLIC invariants (see DESIGN.md, "Static analysis &
# invariants" and "Lock hierarchy & concurrency discipline"): clicerr,
# simtime, bufown, metricname, tracestage, lockorder, blockunderlock,
# atomicmix.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/cliclint ./...

# check is the full gate: build, lint, and the test suite under the race
# detector (the live stack runs real goroutines) with the lockcheck
# build tag, so the runtime lock-rank assertions are armed: any
# acquisition that inverts the declared //lockorder: hierarchy panics
# instead of deadlocking some other day.
check: build lint
	$(GO) test -race -tags lockcheck ./...

bench:
	$(GO) run ./cmd/clicbench all

# bench-live measures the real loopback datapath — the single-pair
# sweep (E15) and the many-peer fan-in sweep (E18) — and appends
# labeled entries to BENCH_live.json. The 0-alloc guards run first
# (including the sharded steady state): a steady-state allocation
# regression fails the target before it can skew the throughput
# numbers.
LIVE_LABEL ?= local
bench-live:
	$(GO) test -count=1 -run 'TestSteadyState' ./internal/live/
	$(GO) run ./cmd/clicbench -live-out BENCH_live.json -live-label "$(LIVE_LABEL)" live
	$(GO) run ./cmd/clicbench -live-out BENCH_live.json -live-label "$(LIVE_LABEL)" fanin

# perf-gate is the local twin of CI's perf-gate job: seed a baseline on
# this machine (median of 3 runs, MAD noise bands), re-measure and
# check against it, then prove the gate actually fires by injecting a
# 20% throughput regression that must exit non-zero. Use
# `clicbench -seed-baseline bench/baseline.json -runs 5 live` to
# refresh the committed baseline instead.
perf-gate:
	$(GO) test -count=1 ./internal/perfreg/
	$(GO) run ./cmd/clicbench -seed-baseline .perfgate-baseline.json -runs 3 live
	$(GO) run ./cmd/clicbench -baseline .perfgate-baseline.json -check live
	@if $(GO) run ./cmd/clicbench -baseline .perfgate-baseline.json -check -canary 0.8 live >/dev/null; then \
		echo "perf-gate: injected canary regression was NOT caught"; \
		rm -f .perfgate-baseline.json; exit 1; \
	else \
		echo "perf-gate: canary regression correctly tripped the gate"; \
	fi
	@rm -f .perfgate-baseline.json
	$(GO) run ./cmd/clicbench -seed-baseline .perfgate-fanin.json -runs 3 fanin
	$(GO) run ./cmd/clicbench -baseline .perfgate-fanin.json -check fanin
	@rm -f .perfgate-fanin.json
