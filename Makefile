GO ?= go

.PHONY: build test lint check bench bench-live

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs go vet plus cliclint, the in-tree go/analysis suite that
# enforces the CLIC invariants (see DESIGN.md, "Static analysis &
# invariants" and "Lock hierarchy & concurrency discipline"): clicerr,
# simtime, bufown, metricname, tracestage, lockorder, blockunderlock,
# atomicmix.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/cliclint ./...

# check is the full gate: build, lint, and the test suite under the race
# detector (the live stack runs real goroutines) with the lockcheck
# build tag, so the runtime lock-rank assertions are armed: any
# acquisition that inverts the declared //lockorder: hierarchy panics
# instead of deadlocking some other day.
check: build lint
	$(GO) test -race -tags lockcheck ./...

bench:
	$(GO) run ./cmd/clicbench all

# bench-live measures the real loopback datapath (E15) and appends a
# labeled entry to BENCH_live.json. The 0-alloc guards run first: a
# steady-state allocation regression fails the target before it can
# skew the throughput numbers.
LIVE_LABEL ?= local
bench-live:
	$(GO) test -count=1 -run 'TestSteadyState' ./internal/live/
	$(GO) run ./cmd/clicbench -live-out BENCH_live.json -live-label "$(LIVE_LABEL)" live
