GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full gate: build, vet, and the test suite under the race
# detector (the live stack runs real goroutines).
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/clicbench all
